//! # distws-bench
//!
//! The experiment harness: one function per table/figure of the
//! paper's evaluation (§VII–§X), each returning machine-readable rows.
//! The `repro` binary prints them as the paper formats them;
//! `benches/` wires the same functions into Criterion; EXPERIMENTS.md
//! is generated from these results.
//!
//! | function | paper artifact |
//! |---|---|
//! | [`fig3_steal_ratio`] | Fig. 3 — steals-to-task ratio |
//! | [`fig4_sequential`] | Fig. 4 — sequential execution times |
//! | [`fig5_speedups`] | Fig. 5 — speedup vs workers, X10WS vs DistWS |
//! | [`fig6_three_way`] | Fig. 6 — X10WS vs DistWS-NS vs DistWS at 128 workers |
//! | [`fig7_utilization`] | Fig. 7 — per-node CPU utilization |
//! | [`table1_granularity`] | Table I — task granularities |
//! | [`table2_cache`] | Table II — L1d miss rates |
//! | [`table3_messages`] | Table III — messages across nodes |
//! | [`granularity_study`] | §VIII.2 — micro-app study |
//! | [`uts_study`] | §X — UTS vs random/lifeline stealing |
//! | [`ablation_chunk`] | §V.B.3 — remote chunk size |
//! | [`ablation_mapping_rule`] | Alg. 1 line 5 — idle/under-utilized rule |
//! | [`ablation_victim_order`] | footnote 2 — ring victim ordering |

#![forbid(unsafe_code)]

pub mod checkjson;
pub mod perf;
pub mod scale;

use distws_apps as apps;
use distws_core::{ClusterConfig, RunReport, Workload};
use distws_json::impl_to_json;
use distws_netsim::Topology;
use distws_sched::{
    AdaptiveWs, DistWs, DistWsNs, LifelineWs, Policy, RandomWs, VictimOrder, X10Ws,
};
use distws_sim::{FaultSpec, SimConfig, Simulation};

/// Input scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs — smoke tests and Criterion benches.
    Quick,
    /// Reduced default inputs — the shipped tables.
    Default,
    /// Paper-sized inputs where feasible (slow).
    Paper,
}

/// The paper's seven-application suite at a scale, paper order.
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Quick => apps::quick_suite(),
        Scale::Default => apps::paper_suite(),
        Scale::Paper => vec![
            Box::new(apps::Quicksort::paper()),
            Box::new(apps::TuringRing::paper()),
            Box::new(apps::KMeans::paper()),
            Box::new(apps::Agglomerative::new(8_192, 23)),
            Box::new(apps::DelaunayGen::paper()),
            Box::new(apps::DelaunayRefine::paper()),
            Box::new(apps::NBody::paper()),
        ],
    }
}

/// Find an application of [`suite`] by (case-insensitive) name.
/// `"quicksort"`, `"Quicksort"` and `"quick"` all find Quicksort.
pub fn app_by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    let want = name.to_ascii_lowercase();
    let mut apps = suite(scale);
    let idx = apps
        .iter()
        .position(|a| a.name().to_ascii_lowercase() == want)
        .or_else(|| {
            apps.iter()
                .position(|a| a.name().to_ascii_lowercase().starts_with(&want))
        })?;
    Some(apps.swap_remove(idx))
}

/// Construct a policy by (case-insensitive) display name.
pub fn policy_by_name(name: &str) -> Option<Box<dyn Policy>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "x10ws" => Box::new(X10Ws),
        "distws" => Box::new(DistWs::default()),
        "distws-ns" | "distwsns" => Box::new(DistWsNs::default()),
        "randomws" | "random" => Box::new(RandomWs),
        "lifelinews" | "lifeline" => Box::new(LifelineWs::default()),
        "adaptivews" | "adaptive" => Box::new(AdaptiveWs::default()),
        _ => return None,
    })
}

/// The paper's evaluation cluster at a scale (full scale: 16 × 8).
pub fn eval_cluster(scale: Scale) -> ClusterConfig {
    match scale {
        Scale::Quick => ClusterConfig::new(4, 2),
        _ => ClusterConfig::paper(),
    }
}

/// Worker counts of the Fig. 5 sweep at a scale.
pub fn worker_sweep(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Quick => vec![1, 2, 8, 16],
        _ => vec![1, 2, 4, 8, 16, 32, 64, 128],
    }
}

fn simulate(cluster: ClusterConfig, policy: Box<dyn Policy>, app: &dyn Workload) -> RunReport {
    Simulation::new(cluster, policy).run_app(app)
}

fn simulate_topo(
    cluster: ClusterConfig,
    policy: Box<dyn Policy>,
    app: &dyn Workload,
    topo: Topology,
) -> RunReport {
    let mut cfg = SimConfig::new(cluster);
    cfg.topology = topo;
    Simulation::with_config(cfg, policy).run_app(app)
}

// ---------------------------------------------------------------------------
// Fig. 3
// ---------------------------------------------------------------------------

/// One row of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Application name.
    pub app: String,
    /// Successful steals (all tiers) under DistWS at full scale.
    pub steals: u64,
    /// Tasks spawned.
    pub tasks: u64,
    /// Steals-to-task ratio (paper: 1e-4 .. 1e-5 territory).
    pub ratio: f64,
}

/// Fig. 3: steals-to-task ratios under DistWS on the evaluation
/// cluster.
pub fn fig3_steal_ratio(scale: Scale) -> Vec<Fig3Row> {
    suite(scale)
        .iter()
        .map(|app| {
            let r = simulate(
                eval_cluster(scale),
                Box::new(DistWs::default()),
                app.as_ref(),
            );
            Fig3Row {
                app: app.name(),
                steals: r.steals.total(),
                tasks: r.tasks_spawned,
                ratio: r.steals_to_task_ratio(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 4
// ---------------------------------------------------------------------------

/// One row of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Application name.
    pub app: String,
    /// Sequential (1 worker, X10WS) virtual execution time in ms.
    pub seq_ms: f64,
    /// Tasks in the sequential run.
    pub tasks: u64,
}

/// Fig. 4: sequential execution time per application.
pub fn fig4_sequential(scale: Scale) -> Vec<Fig4Row> {
    suite(scale)
        .iter()
        .map(|app| {
            let r = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), app.as_ref());
            Fig4Row {
                app: app.name(),
                seq_ms: r.makespan_ns as f64 / 1e6,
                tasks: r.tasks_spawned,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 5
// ---------------------------------------------------------------------------

/// One (app, workers, scheduler) point of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Application name.
    pub app: String,
    /// Total workers (places × 8 above 8).
    pub workers: u32,
    /// Scheduler name.
    pub scheduler: String,
    /// Speedup over the 1-worker sequential run.
    pub speedup: f64,
    /// Makespan in ms.
    pub makespan_ms: f64,
}

/// Fig. 5: speedups of X10WS and DistWS across the worker sweep.
pub fn fig5_speedups(scale: Scale) -> Vec<Fig5Point> {
    let mut out = Vec::new();
    for app in suite(scale) {
        let seq = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), app.as_ref());
        let seq_ns = seq.makespan_ns;
        for &w in &worker_sweep(scale) {
            let cluster = ClusterConfig::for_total_workers(w);
            for policy in [
                Box::new(X10Ws) as Box<dyn Policy>,
                Box::new(DistWs::default()) as Box<dyn Policy>,
            ] {
                let name = policy.name().to_string();
                let r = simulate(cluster.clone(), policy, app.as_ref());
                out.push(Fig5Point {
                    app: app.name(),
                    workers: w,
                    scheduler: name,
                    speedup: r.speedup_vs(seq_ns),
                    makespan_ms: r.makespan_ns as f64 / 1e6,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 6 / Tables II & III (shared three-way runs)
// ---------------------------------------------------------------------------

/// One (app, scheduler) row of the 128-worker three-way comparison,
/// feeding Fig. 6 (speedups), Table II (miss rates) and Table III
/// (messages).
#[derive(Debug, Clone)]
pub struct ThreeWayRow {
    /// Application name.
    pub app: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Speedup over sequential.
    pub speedup: f64,
    /// L1d miss rate in percent.
    pub l1d_miss_pct: f64,
    /// Messages transmitted across nodes.
    pub messages: u64,
    /// Remote data references.
    pub remote_refs: u64,
}

/// The three-way comparison on the evaluation cluster.
pub fn three_way(scale: Scale) -> Vec<ThreeWayRow> {
    let mut out = Vec::new();
    for app in suite(scale) {
        let seq = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), app.as_ref());
        for policy in [
            Box::new(X10Ws) as Box<dyn Policy>,
            Box::new(DistWsNs::default()) as Box<dyn Policy>,
            Box::new(DistWs::default()) as Box<dyn Policy>,
        ] {
            let name = policy.name().to_string();
            let r = simulate(eval_cluster(scale), policy, app.as_ref());
            out.push(ThreeWayRow {
                app: app.name(),
                scheduler: name,
                speedup: r.speedup_vs(seq.makespan_ns),
                l1d_miss_pct: r.cache.miss_rate_pct(),
                messages: r.messages.total(),
                remote_refs: r.remote_refs,
            });
        }
    }
    out
}

/// Fig. 6 view of [`three_way`].
pub fn fig6_three_way(scale: Scale) -> Vec<ThreeWayRow> {
    three_way(scale)
}

/// Table II view of [`three_way`].
pub fn table2_cache(scale: Scale) -> Vec<ThreeWayRow> {
    three_way(scale)
}

/// Table III view of [`three_way`].
pub fn table3_messages(scale: Scale) -> Vec<ThreeWayRow> {
    three_way(scale)
}

// ---------------------------------------------------------------------------
// Fig. 7
// ---------------------------------------------------------------------------

/// One (app, scheduler) utilization line of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Application name.
    pub app: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Average CPU utilization per place, in percent.
    pub per_place_pct: Vec<f64>,
    /// Max − min utilization (the paper's "disparity", ~35 % X10WS).
    pub disparity_pct: f64,
    /// Mean utilization.
    pub mean_pct: f64,
}

/// Fig. 7: per-node CPU utilization under X10WS, DistWS-NS and DistWS.
pub fn fig7_utilization(scale: Scale) -> Vec<Fig7Row> {
    let mut out = Vec::new();
    for app in suite(scale) {
        for policy in [
            Box::new(X10Ws) as Box<dyn Policy>,
            Box::new(DistWsNs::default()) as Box<dyn Policy>,
            Box::new(DistWs::default()) as Box<dyn Policy>,
        ] {
            let name = policy.name().to_string();
            let r = simulate(eval_cluster(scale), policy, app.as_ref());
            out.push(Fig7Row {
                app: app.name(),
                scheduler: name,
                per_place_pct: r.utilization.per_place.iter().map(|u| u * 100.0).collect(),
                disparity_pct: r.utilization.disparity() * 100.0,
                mean_pct: r.utilization.mean() * 100.0,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Mean task granularity in ms.
    pub granularity_ms: f64,
    /// Tasks in the run.
    pub tasks: u64,
}

/// Table I: mean task granularities (from the sequential run: total
/// compute / tasks).
pub fn table1_granularity(scale: Scale) -> Vec<Table1Row> {
    suite(scale)
        .iter()
        .map(|app| {
            let r = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), app.as_ref());
            Table1Row {
                app: app.name(),
                granularity_ms: r.mean_task_granularity_ns() / 1e6,
                tasks: r.tasks_executed,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §VIII.2 granularity study
// ---------------------------------------------------------------------------

/// One (micro-app, scheduler) row of the granularity study.
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Micro-application name.
    pub app: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Mean task granularity in ms.
    pub granularity_ms: f64,
    /// Speedup over sequential.
    pub speedup: f64,
}

/// §VIII.2: the five fine-grained micro-apps under X10WS vs DistWS —
/// the paper's evidence that only coarse tasks are worth stealing
/// remotely.
pub fn granularity_study(scale: Scale) -> Vec<GranularityRow> {
    let mut out = Vec::new();
    for app in apps::micro::micro_suite() {
        let seq = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), app.as_ref());
        for policy in [
            Box::new(X10Ws) as Box<dyn Policy>,
            Box::new(DistWs::default()) as Box<dyn Policy>,
        ] {
            let name = policy.name().to_string();
            let r = simulate(eval_cluster(scale), policy, app.as_ref());
            out.push(GranularityRow {
                app: app.name(),
                scheduler: name,
                granularity_ms: seq.mean_task_granularity_ns() / 1e6,
                speedup: r.speedup_vs(seq.makespan_ns),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// §X UTS study
// ---------------------------------------------------------------------------

/// One row of the UTS comparison.
#[derive(Debug, Clone)]
pub struct UtsRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Speedup over sequential.
    pub speedup: f64,
    /// Remote steals (incl. lifeline pushes).
    pub remote_steals: u64,
}

/// §X: UTS under random stealing, DistWS, and lifeline-based load
/// balancing. Expected shape: lifeline ≥ DistWS > random.
pub fn uts_study(scale: Scale) -> Vec<UtsRow> {
    let app = match scale {
        Scale::Quick => apps::Uts::quick(),
        _ => apps::Uts::default(),
    };
    let seq = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), &app);
    [
        Box::new(RandomWs) as Box<dyn Policy>,
        Box::new(DistWs::default()) as Box<dyn Policy>,
        Box::new(LifelineWs::default()) as Box<dyn Policy>,
    ]
    .into_iter()
    .map(|policy| {
        let name = policy.name().to_string();
        let r = simulate(eval_cluster(scale), policy, &app);
        UtsRow {
            scheduler: name,
            speedup: r.speedup_vs(seq.makespan_ns),
            remote_steals: r.steals.remote,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Extension: adaptive (annotation-free) classification
// ---------------------------------------------------------------------------

/// One row of the adaptive-classification study.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Application name.
    pub app: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Speedup over sequential.
    pub speedup: f64,
    /// Remote data references (cost of misclassification).
    pub remote_refs: u64,
}

/// Extension experiment: can a profile-guided runtime recover the
/// programmer annotation's benefit? Runs the suite under X10WS,
/// annotation-driven DistWS, and annotation-free [`AdaptiveWs`].
pub fn adaptive_study(scale: Scale) -> Vec<AdaptiveRow> {
    let mut out = Vec::new();
    for app in suite(scale) {
        let seq = simulate(ClusterConfig::new(1, 1), Box::new(X10Ws), app.as_ref());
        for policy in [
            Box::new(X10Ws) as Box<dyn Policy>,
            Box::new(DistWs::default()) as Box<dyn Policy>,
            Box::new(AdaptiveWs::default()) as Box<dyn Policy>,
        ] {
            let name = policy.name().to_string();
            let r = simulate(eval_cluster(scale), policy, app.as_ref());
            out.push(AdaptiveRow {
                app: app.name(),
                scheduler: name,
                speedup: r.speedup_vs(seq.makespan_ns),
                remote_refs: r.remote_refs,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One ablation data point.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Varied parameter rendered as text.
    pub variant: String,
    /// Application name.
    pub app: String,
    /// Makespan in ms.
    pub makespan_ms: f64,
    /// Remote steals.
    pub remote_steals: u64,
}

/// §V.B.3 ablation: remote steal chunk size ∈ {1, 2, 4, 8} on DMG and
/// the Turing ring. The paper found 2 best for structured *and*
/// bursty graphs.
pub fn ablation_chunk(scale: Scale) -> Vec<AblationRow> {
    let mut out = Vec::new();
    let apps: Vec<Box<dyn Workload>> = match scale {
        Scale::Quick => vec![
            Box::new(apps::DelaunayGen::quick()),
            Box::new(apps::TuringRing::quick()),
        ],
        _ => vec![
            Box::new(apps::DelaunayGen::default()),
            Box::new(apps::TuringRing::default()),
        ],
    };
    for app in &apps {
        let variants: Vec<(String, DistWs)> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|c| (format!("chunk={c}"), DistWs::with_chunk(c)))
            .chain(std::iter::once((
                "chunk=half".to_string(),
                DistWs::steal_half(),
            )))
            .collect();
        for (label, policy) in variants {
            let r = simulate(eval_cluster(scale), Box::new(policy), app.as_ref());
            out.push(AblationRow {
                variant: label,
                app: app.name(),
                makespan_ms: r.makespan_ns as f64 / 1e6,
                remote_steals: r.steals.remote,
            });
        }
    }
    out
}

/// Algorithm 1 line 5 ablation: the idle/under-utilized private-
/// mapping rule on vs off.
pub fn ablation_mapping_rule(scale: Scale) -> Vec<AblationRow> {
    let mut out = Vec::new();
    let apps: Vec<Box<dyn Workload>> = match scale {
        Scale::Quick => vec![
            Box::new(apps::DelaunayGen::quick()),
            Box::new(apps::Uts::quick()),
        ],
        _ => vec![
            Box::new(apps::DelaunayGen::default()),
            Box::new(apps::Uts::default()),
        ],
    };
    for app in &apps {
        for (label, policy) in [
            ("rule=on", DistWs::default()),
            ("rule=off", DistWs::without_utilization_rule()),
        ] {
            let r = simulate(eval_cluster(scale), Box::new(policy), app.as_ref());
            out.push(AblationRow {
                variant: label.to_string(),
                app: app.name(),
                makespan_ms: r.makespan_ns as f64 / 1e6,
                remote_steals: r.steals.remote,
            });
        }
    }
    out
}

/// Footnote 2 ablation: victim ordering on a ring interconnect —
/// nearest-first vs random.
pub fn ablation_victim_order(scale: Scale) -> Vec<AblationRow> {
    let app: Box<dyn Workload> = match scale {
        Scale::Quick => Box::new(apps::DelaunayGen::quick()),
        _ => Box::new(apps::DelaunayGen::default()),
    };
    [
        ("victims=random", VictimOrder::Random),
        ("victims=ring-nearest", VictimOrder::NearestFirstRing),
    ]
    .into_iter()
    .map(|(label, order)| {
        let r = simulate_topo(
            eval_cluster(scale),
            Box::new(DistWs::with_victim_order(order)),
            app.as_ref(),
            Topology::Ring,
        );
        AblationRow {
            variant: label.to_string(),
            app: app.name(),
            makespan_ms: r.makespan_ns as f64 / 1e6,
            remote_steals: r.steals.remote,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Chaos sweeps (fault injection)
// ---------------------------------------------------------------------------

/// Fault-intensity levels of a chaos sweep. The spec's probabilistic
/// knobs are multiplied by each level; structural faults (kills,
/// restarts, partitions) are active at any level above zero. Level 0
/// is the fault-free baseline the other rows degrade against.
pub const CHAOS_LEVELS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// One intensity level of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Application name.
    pub app: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Fault intensity (multiplier on the spec's probabilities).
    pub level: f64,
    /// Makespan in ms.
    pub makespan_ms: f64,
    /// Makespan degradation vs the level-0 baseline, in percent.
    pub degradation_pct: f64,
    /// Tasks executed (exactly-once: equals tasks spawned, asserted).
    pub tasks: u64,
    /// Messages lost in flight.
    pub msgs_dropped: u64,
    /// Messages duplicated in flight.
    pub msgs_duplicated: u64,
    /// Remote steal probes that timed out.
    pub steal_timeouts: u64,
    /// Backoff retries after steal timeouts.
    pub steal_retries: u64,
    /// Reliable-channel retransmissions of task-carrying messages.
    pub retransmissions: u64,
    /// Tasks re-enqueued away from failed places.
    pub tasks_recovered: u64,
    /// Migrations reclaimed by the victim after a lost payload.
    pub lease_reclaims: u64,
    /// Places that suffered a fail-stop.
    pub places_failed: u64,
}

/// Run one application under one policy across [`CHAOS_LEVELS`]
/// intensities of a fault spec. The level-0 run doubles as the
/// baseline that `%`-relative times in the spec resolve against and
/// that degradation is measured from. Every run revalidates the
/// workload and asserts spawned == executed, so each returned row is
/// also a proof of exactly-once execution at that fault level.
/// Returns `None` when the app or policy name is unknown.
pub fn chaos_sweep(
    app_name: &str,
    policy_name: &str,
    spec: &FaultSpec,
    scale: Scale,
    seed: u64,
) -> Option<Vec<ChaosRow>> {
    let cluster = eval_cluster(scale);
    let mut out = Vec::new();
    let mut baseline_ns = 0u64;
    for &level in &CHAOS_LEVELS {
        let app = app_by_name(app_name, scale)?;
        let policy = policy_by_name(policy_name)?;
        let mut cfg = SimConfig::new(cluster.clone());
        cfg.seed = seed;
        if level > 0.0 {
            cfg.faults = spec.resolve(baseline_ns, level, seed);
        }
        let r = Simulation::with_config(cfg, policy).run_app(app.as_ref());
        assert_eq!(
            r.tasks_spawned, r.tasks_executed,
            "{app_name} level {level}: a task was lost or re-executed"
        );
        if level == 0.0 {
            baseline_ns = r.makespan_ns;
        }
        let degradation_pct = if baseline_ns > 0 {
            100.0 * (r.makespan_ns as f64 / baseline_ns as f64 - 1.0)
        } else {
            0.0
        };
        out.push(ChaosRow {
            app: r.app.clone(),
            scheduler: r.scheduler.clone(),
            level,
            makespan_ms: r.makespan_ns as f64 / 1e6,
            degradation_pct,
            tasks: r.tasks_executed,
            msgs_dropped: r.faults.msgs_dropped,
            msgs_duplicated: r.faults.msgs_duplicated,
            steal_timeouts: r.faults.steal_timeouts,
            steal_retries: r.faults.steal_retries,
            retransmissions: r.faults.retransmissions,
            tasks_recovered: r.faults.tasks_recovered,
            lease_reclaims: r.faults.lease_reclaims,
            places_failed: r.faults.places_failed,
        });
    }
    Some(out)
}

/// What [`chaos_sweep_validated`] proved about the sweep's traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosValidation {
    /// Fault levels whose event streams passed the validators.
    pub levels_validated: usize,
    /// Total trace events checked across all levels.
    pub events_checked: usize,
    /// Total task lifecycles proven exactly-once and causally ordered.
    pub tasks_checked: usize,
    /// Total steal attempts replayed through the Algorithm 1
    /// steal-order automaton.
    pub steal_attempts_checked: usize,
    /// Total successful steals whose tier the automaton justified.
    pub steals_justified: usize,
}

/// Like [`chaos_sweep`], but every level runs **traced** and its JSONL
/// event stream is checked by the happens-before validator
/// (`distws-analyze`): spawn happens-before execution, migrations
/// happen-before remote execution, execution happens-before the
/// finish-latch release, and every task runs exactly once — even while
/// faults drop messages and kill places mid-run. Each level's stream
/// is additionally replayed against the Algorithm 1 steal-order
/// automaton ([`distws_analyze::conform_str`]) under the policy's
/// chunk/re-probe contract.
///
/// Tracing does not perturb the simulation (the PR 1 invariant: traced
/// and untraced runs produce byte-identical reports), so the returned
/// rows are exactly what [`chaos_sweep`] returns for the same inputs.
///
/// # Panics
/// Panics with the violation list if any level's trace breaks a
/// happens-before or exactly-once property — this is a correctness
/// assertion in the same spirit as the exactly-once `assert_eq!` in
/// the untraced sweep.
pub fn chaos_sweep_validated(
    app_name: &str,
    policy_name: &str,
    spec: &FaultSpec,
    scale: Scale,
    seed: u64,
) -> Option<(Vec<ChaosRow>, ChaosValidation)> {
    let cluster = eval_cluster(scale);
    let mut out = Vec::new();
    let mut validation = ChaosValidation {
        levels_validated: 0,
        events_checked: 0,
        tasks_checked: 0,
        steal_attempts_checked: 0,
        steals_justified: 0,
    };
    let conform_cfg = distws_analyze::ConformConfig::for_policy(policy_name)
        .unwrap_or_else(distws_analyze::ConformConfig::generic);
    let mut baseline_ns = 0u64;
    for &level in &CHAOS_LEVELS {
        let app = app_by_name(app_name, scale)?;
        let policy = policy_by_name(policy_name)?;
        let mut cfg = SimConfig::new(cluster.clone());
        cfg.seed = seed;
        if level > 0.0 {
            cfg.faults = spec.resolve(baseline_ns, level, seed);
        }
        let mut sink = distws_trace::JsonlSink::new(Vec::new());
        let (r, _) = Simulation::with_config(cfg, policy).run_app_traced(app.as_ref(), &mut sink);
        assert_eq!(
            r.tasks_spawned, r.tasks_executed,
            "{app_name} level {level}: a task was lost or re-executed"
        );
        let jsonl = String::from_utf8(sink.into_inner()).expect("trace is UTF-8");
        let hb = distws_analyze::validate_str(&jsonl);
        assert!(
            hb.ok(),
            "{app_name} level {level}: happens-before violations:\n{}",
            hb.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        let conform = distws_analyze::conform_str(&jsonl, &conform_cfg);
        assert!(
            conform.ok(),
            "{app_name} level {level}: steal-order conformance violations:\n{}",
            conform
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        validation.levels_validated += 1;
        validation.events_checked += hb.events as usize;
        validation.tasks_checked += hb.tasks as usize;
        validation.steal_attempts_checked += conform.attempts as usize;
        validation.steals_justified += conform.successes as usize;
        if level == 0.0 {
            baseline_ns = r.makespan_ns;
        }
        let degradation_pct = if baseline_ns > 0 {
            100.0 * (r.makespan_ns as f64 / baseline_ns as f64 - 1.0)
        } else {
            0.0
        };
        out.push(ChaosRow {
            app: r.app.clone(),
            scheduler: r.scheduler.clone(),
            level,
            makespan_ms: r.makespan_ns as f64 / 1e6,
            degradation_pct,
            tasks: r.tasks_executed,
            msgs_dropped: r.faults.msgs_dropped,
            msgs_duplicated: r.faults.msgs_duplicated,
            steal_timeouts: r.faults.steal_timeouts,
            steal_retries: r.faults.steal_retries,
            retransmissions: r.faults.retransmissions,
            tasks_recovered: r.faults.tasks_recovered,
            lease_reclaims: r.faults.lease_reclaims,
            places_failed: r.faults.places_failed,
        });
    }
    Some((out, validation))
}

// ---------------------------------------------------------------------------
// JSON output (`repro --json DIR`)
// ---------------------------------------------------------------------------

impl_to_json!(Fig3Row {
    app,
    steals,
    tasks,
    ratio
});
impl_to_json!(Fig4Row { app, seq_ms, tasks });
impl_to_json!(Fig5Point {
    app,
    workers,
    scheduler,
    speedup,
    makespan_ms
});
impl_to_json!(ThreeWayRow {
    app,
    scheduler,
    speedup,
    l1d_miss_pct,
    messages,
    remote_refs
});
impl_to_json!(Fig7Row {
    app,
    scheduler,
    per_place_pct,
    disparity_pct,
    mean_pct
});
impl_to_json!(Table1Row {
    app,
    granularity_ms,
    tasks
});
impl_to_json!(GranularityRow {
    app,
    scheduler,
    granularity_ms,
    speedup
});
impl_to_json!(UtsRow {
    scheduler,
    speedup,
    remote_steals
});
impl_to_json!(AdaptiveRow {
    app,
    scheduler,
    speedup,
    remote_refs
});
impl_to_json!(AblationRow {
    variant,
    app,
    makespan_ms,
    remote_steals
});
impl_to_json!(ChaosRow {
    app,
    scheduler,
    level,
    makespan_ms,
    degradation_pct,
    tasks,
    msgs_dropped,
    msgs_duplicated,
    steal_timeouts,
    steal_retries,
    retransmissions,
    tasks_recovered,
    lease_reclaims,
    places_failed
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_rows_cover_the_suite() {
        let rows = fig3_steal_ratio(Scale::Quick);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.tasks > 0);
            // At quick scale tasks are few and coarse, so ratios are far
            // above the paper's 1e-4 (a task may even be re-stolen after
            // arriving in a chunk); they must still be bounded.
            assert!(
                r.ratio >= 0.0 && r.ratio < 2.0,
                "{}: ratio {}",
                r.app,
                r.ratio
            );
        }
    }

    #[test]
    fn fig5_speedup_grows_with_workers_for_distws() {
        let pts = fig5_speedups(Scale::Quick);
        // For DMG under DistWS, 16 workers must beat 1 worker.
        let dmg: Vec<&Fig5Point> = pts
            .iter()
            .filter(|p| p.app == "DMG" && p.scheduler == "DistWS")
            .collect();
        let s1 = dmg.iter().find(|p| p.workers == 1).unwrap().speedup;
        let s16 = dmg.iter().find(|p| p.workers == 16).unwrap().speedup;
        assert!(s16 > s1 * 2.0, "DMG DistWS speedup 1w={s1} 16w={s16}");
    }

    #[test]
    fn three_way_has_21_rows() {
        let rows = three_way(Scale::Quick);
        assert_eq!(rows.len(), 21);
    }

    #[test]
    fn uts_study_shapes() {
        let rows = uts_study(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.speedup > 0.5, "{}: speedup {}", r.scheduler, r.speedup);
        }
    }

    #[test]
    fn adaptive_study_runs_whole_suite() {
        let rows = adaptive_study(Scale::Quick);
        assert_eq!(rows.len(), 21);
        for r in &rows {
            assert!(
                r.speedup > 0.2,
                "{} under {}: speedup {}",
                r.app,
                r.scheduler,
                r.speedup
            );
        }
    }

    #[test]
    fn chaos_sweep_degrades_but_never_loses_tasks() {
        let spec = FaultSpec::parse("drop=0.05,kill=1@40%").unwrap();
        let rows = chaos_sweep("quicksort", "DistWS", &spec, Scale::Quick, 0x5EED).unwrap();
        assert_eq!(rows.len(), CHAOS_LEVELS.len());
        let base = &rows[0];
        assert_eq!(base.level, 0.0);
        assert_eq!(base.msgs_dropped, 0, "level 0 must be fault-free");
        assert_eq!(base.places_failed, 0);
        let full = rows.last().unwrap();
        assert!(full.msgs_dropped > 0, "5% loss must drop something");
        assert_eq!(full.places_failed, 1, "the kill fires at level 1.0");
        // Task counts may legitimately differ across levels (quicksort's
        // recursion tree depends on the order the all-to-all pieces
        // land in); exactly-once per level is asserted inside
        // chaos_sweep, and validation proves the output is sorted.
        for r in &rows {
            assert!(r.tasks > 0, "level {}: no tasks ran", r.level);
        }
    }

    #[test]
    fn chaos_sweep_is_deterministic_in_the_seed() {
        use distws_json::ToJson;
        let spec = FaultSpec::parse("drop=0.1,jitter=2us").unwrap();
        let a = chaos_sweep("k-means", "LifelineWS", &spec, Scale::Quick, 42).unwrap();
        let b = chaos_sweep("k-means", "LifelineWS", &spec, Scale::Quick, 42).unwrap();
        let render = |rows: &[ChaosRow]| {
            rows.iter()
                .map(|r| r.to_json().render())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b), "same seed, same chaos report");
    }

    #[test]
    fn ablations_run() {
        assert_eq!(ablation_chunk(Scale::Quick).len(), 10);
        assert_eq!(ablation_mapping_rule(Scale::Quick).len(), 4);
        assert_eq!(ablation_victim_order(Scale::Quick).len(), 2);
    }
}
