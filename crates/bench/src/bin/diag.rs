//! `diag` — side-by-side X10WS vs DistWS report for one application at
//! full scale (a development aid; the `repro` binary generates the
//! paper's tables).
//!
//! ```text
//! diag <turing|nbody|dmr|qsort|dmg|kmeans|agglom>
//! diag metrics <BENCH_*.json | app>
//! ```
//! schedulers at full scale.
//!
//! `diag metrics FILE.json` renders the engine counter/gauge/phase
//! tables of a recorded `repro bench` trajectory; `diag metrics <app>`
//! runs that app fresh (DistWS, paper cluster) with metrics enabled
//! and renders its table.
fn main() {
    use distws_core::{ClusterConfig, Workload};
    use distws_sched::{DistWs, Policy, X10Ws};
    use distws_sim::Simulation;
    let name = std::env::args().nth(1).unwrap_or_else(|| "turing".into());
    if name == "metrics" {
        let arg = std::env::args().nth(2).unwrap_or_else(|| {
            eprintln!("usage: diag metrics <BENCH_*.json | app>");
            std::process::exit(2);
        });
        run_metrics_view(&arg);
        return;
    }
    let app: Box<dyn Workload> = match name.as_str() {
        "turing" => Box::new(distws_apps::TuringRing::default()),
        "nbody" => Box::new(distws_apps::NBody::default()),
        "dmr" => Box::new(distws_apps::DelaunayRefine::default()),
        "qsort" => Box::new(distws_apps::Quicksort::default()),
        "dmg" => Box::new(distws_apps::DelaunayGen::default()),
        "kmeans" => Box::new(distws_apps::KMeans::default()),
        "agglom" => Box::new(distws_apps::Agglomerative::default()),
        other => panic!("unknown app {other}"),
    };
    for policy in [
        Box::new(X10Ws) as Box<dyn Policy>,
        Box::new(DistWs::default()),
    ] {
        use distws_sim::SimConfig;
        let pname = policy.name();
        // Pass 1 sizes the sampling grid; pass 2 collects the series.
        // Virtual time is deterministic, so the reports are identical.
        let pre = Simulation::new(ClusterConfig::paper(), policy.clone_box()).run_app(app.as_ref());
        let mut cfg = SimConfig::new(ClusterConfig::paper());
        cfg.sample_interval_ns = Some((pre.makespan_ns / 160).max(1));
        let (r, series) = Simulation::with_config(cfg, policy)
            .run_app_traced(app.as_ref(), &mut distws_trace::NullSink);
        eprintln!(
            "{pname:<8} makespan {:>9.2} ms  work {:>9.2} ms  tasks {}",
            r.makespan_ns as f64 / 1e6,
            r.total_work_ns as f64 / 1e6,
            r.tasks_executed
        );
        eprintln!(
            "  steals: priv {} shared {} remote {} failed {}",
            r.steals.local_private,
            r.steals.local_shared,
            r.steals.remote,
            r.steals.failed_attempts
        );
        eprintln!(
            "  msgs: req {} reply {} migrate {} dreq {} drep {} bytes {}",
            r.messages.steal_requests,
            r.messages.steal_replies,
            r.messages.task_migrations,
            r.messages.data_requests,
            r.messages.data_replies,
            r.messages.bytes
        );
        eprintln!(
            "  remote_refs {}  util mean {:.1}% disparity {:.1}%",
            r.remote_refs,
            r.utilization.mean() * 100.0,
            r.utilization.disparity() * 100.0
        );
        let g = &r.percentiles.task_granularity_ns;
        let s = &r.percentiles.steal_remote_ns;
        eprintln!(
            "  granularity p50/p99 {}/{} ns  remote-steal p50/p99 {}/{} ns",
            g.p50, g.p99, s.p50, s.p99
        );
        if let Some(series) = series {
            eprint!("{}", distws_trace::render_timeline(&series, 100));
        }
    }
}

/// `diag metrics` — counter/gauge/phase tables from a `BENCH_*.json`
/// trajectory or a fresh metered run of one app.
fn run_metrics_view(arg: &str) {
    use distws_bench::perf;
    if arg.ends_with(".json") {
        let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("{arg}: {e}");
            std::process::exit(2);
        });
        let report = perf::parse_report(&text).unwrap_or_else(|e| {
            eprintln!("{arg}: {e}");
            std::process::exit(2);
        });
        print!("{}", perf::render_metrics_view(&report));
        return;
    }
    let point = perf::BenchPoint {
        app: Box::leak(arg.to_string().into_boxed_str()),
        policy: "DistWS",
        cluster: distws_core::ClusterConfig::paper(),
        scale: distws_bench::Scale::Default,
    };
    if perf::bench_app(arg, distws_bench::Scale::Default).is_none() {
        eprintln!("unknown app '{arg}' (try Quicksort, k-Means, UTS, DMG, ...)");
        std::process::exit(2);
    }
    let cell = perf::run_cell(&point, 0, 1);
    let report = perf::BenchReport {
        schema_version: perf::BENCH_SCHEMA_VERSION,
        suite: "adhoc".into(),
        seed: 0,
        cells: vec![cell],
    };
    print!("{}", perf::render_metrics_view(&report));
}
