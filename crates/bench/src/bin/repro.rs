//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale quick|default|paper] [--json DIR]
//! repro trace <app> [--scale ...] [--policy NAME] [--seed N] [--json DIR]
//! repro chaos <app> --faults SPEC [--scale ...] [--policy NAME] [--seed N] [--json DIR] [--validate]
//! repro cluster <app> --places N [--wpp N] [--policy NAME] [--seed N] [--transport unix|tcp]
//!               [--kill "place@ms[,restart@ms][;...]"] [--dir DIR]
//! repro bench [--suite quick|full] [--seed S] [--out FILE] [--baseline FILE] [--threshold PCT] [--no-gate]
//! repro bench --check FILE
//! repro lint [ROOT]
//! repro check [interleave | protocol | liveness | mutants | hb FILE.jsonl] [--scenario NAME] [--list]
//! repro check protocol [--scenario NAME] [--full] [--compare] [--json]
//! repro check liveness [--scenario NAME] [--full] [--compare] [--json]
//! repro check tla [--scenario NAME] [--out FILE]
//! repro conform FILE.jsonl [--policy NAME]
//!
//! experiments:
//!   fig3 fig4 fig5 fig6 fig7 table1 table2 table3
//!   granularity uts adaptive ablation all
//! ```
//!
//! `repro trace` runs one application once with full observability:
//! it streams the typed event log as JSONL, exports a Chrome
//! `trace_event` JSON (load it at <https://ui.perfetto.dev>), dumps the
//! utilization time series, and prints a terminal place timeline plus
//! the latency/granularity percentile summaries.
//!
//! `repro chaos` sweeps fault-injection intensities of a `--faults`
//! spec (grammar in `docs/faults.md`, e.g.
//! `drop=0.05,jitter=2us,kill=3@40%`) and prints a degradation table:
//! makespan inflation vs the fault-free baseline plus drop/timeout/
//! retry/recovery counters per level. Every run asserts exactly-once
//! task execution. With `--validate`, every level additionally runs
//! traced and its event stream is checked by the happens-before
//! validator (tracing does not perturb results — PR 1 invariant).
//!
//! `repro bench` runs the performance suite (`docs/metrics.md`): a
//! fixed matrix of apps × policies × cluster sizes with engine
//! self-metrics enabled, recording events/sec, sim-ns per wall-ms,
//! peak RSS and makespan per cell into the schema-versioned
//! `BENCH_quick.json` / `BENCH_full.json` at the repo root. The run is
//! compared cell-by-cell against the committed baseline and exits
//! nonzero when events/sec drops by more than `--threshold` percent
//! (default 10). `repro bench --check FILE` only schema-validates a
//! trajectory file.
//!
//! `repro lint` runs the determinism lint over the workspace (or a
//! given root) and exits nonzero with `file:line` diagnostics on any
//! violation. `repro check` runs the bounded Chase-Lev/FIFO
//! interleaving checker (`interleave`), the Algorithm 1 protocol
//! model checker (`protocol` — reduced by default, `--full` for the
//! unreduced exploration, `--full --compare` for the reduced/full
//! cross-validation), the protocol-mutation smoke test (`mutants`;
//! exit 3 when a mutant exploration crashes rather than catches), or
//! the TLA+ exporter (`tla [--out FILE]`, module named after the file
//! stem); `--scenario NAME` restricts a checker to one builtin
//! scenario and `--list` enumerates them. `repro check hb FILE`
//! validates a `*.trace.jsonl` file; `repro conform FILE` replays one
//! against the Algorithm 1 steal-order automaton (pass `--policy` to
//! apply that policy's chunk/re-probe contract). See
//! `docs/analysis.md`.

use distws_bench as bench;
use distws_bench::{checkjson, perf, Scale};
use std::io::Write;

/// Short git commit baked in at compile time (`build.rs`), so the
/// benched binary's provenance is always printed — a stale
/// `target/release/repro` from an older checkout is the classic way to
/// gate CI against the wrong code.
fn build_hash() -> &'static str {
    option_env!("DISTWS_BUILD_HASH").unwrap_or("unknown")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The cluster subcommands carry their own flag namespace
    // (--places, --kill, --place, ...) — dispatch before the main
    // flag loop so it doesn't reject them.
    match args.first().map(String::as_str) {
        Some("cluster") => {
            run_cluster_cmd(&args[1..]);
            return;
        }
        Some("cluster-place") => {
            run_cluster_place_cmd(&args[1..]);
            return;
        }
        _ => {}
    }
    let mut positional: Vec<String> = Vec::new();
    let mut scale = Scale::Default;
    let mut json_dir: Option<String> = None;
    let mut policy_name = "DistWS".to_string();
    let mut fault_spec: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut validate = false;
    let mut scenario: Option<String> = None;
    let mut list = false;
    let mut full = false;
    let mut compare = false;
    let mut suite = perf::BenchSuite::Quick;
    let mut bench_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut threshold = perf::DEFAULT_THRESHOLD_PCT;
    let mut gate = true;
    let mut check_path: Option<String> = None;
    let mut max_tasks: u64 = u64::MAX;
    let mut max_wall_s: Option<f64> = None;
    let mut max_rss_mb: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--validate" => validate = true,
            "--list" => list = true,
            "--full" => full = true,
            "--compare" => compare = true,
            "--scenario" => {
                i += 1;
                scenario = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--scenario needs a name (see repro check --list)");
                    std::process::exit(2);
                }));
            }
            "--faults" => {
                i += 1;
                fault_spec = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--faults needs a spec (e.g. drop=0.05,kill=3@40%)");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                i += 1;
                seed = Some(args.get(i).and_then(|s| parse_seed(s)).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer (decimal or 0x hex)");
                    std::process::exit(2);
                }));
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(|s| s.as_str()) {
                    Some("quick") => Scale::Quick,
                    Some("default") => Scale::Default,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                // Takes a directory for the experiment commands
                // (`repro trace ... --json DIR`); for the check
                // commands it is a bare flag (JSON to stdout), so
                // only consume a value that isn't another flag.
                if args.get(i + 1).is_some_and(|a| !a.starts_with("--")) {
                    i += 1;
                    json_dir = Some(args[i].clone());
                } else {
                    json_dir = Some(".".into());
                }
            }
            "--policy" => {
                i += 1;
                policy_name = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--policy needs a scheduler name");
                    std::process::exit(2);
                });
            }
            "--suite" => {
                i += 1;
                suite = args
                    .get(i)
                    .and_then(|s| perf::BenchSuite::by_name(s))
                    .unwrap_or_else(|| {
                        eprintln!("--suite needs 'quick' or 'full'");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                bench_out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }));
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--baseline needs a BENCH_*.json path");
                    std::process::exit(2);
                }));
            }
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--threshold needs a non-negative percentage (e.g. 10)");
                        std::process::exit(2);
                    });
            }
            "--no-gate" => gate = false,
            "--check" => {
                i += 1;
                check_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check needs a BENCH_*.json path");
                    std::process::exit(2);
                }));
            }
            "--max-tasks" => {
                i += 1;
                max_tasks = args
                    .get(i)
                    .and_then(|s| s.replace('_', "").parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-tasks needs an integer task bound");
                        std::process::exit(2);
                    });
            }
            "--max-wall-s" => {
                i += 1;
                max_wall_s = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .unwrap_or_else(|| {
                            eprintln!("--max-wall-s needs a positive seconds budget");
                            std::process::exit(2);
                        }),
                );
            }
            "--max-rss-mb" => {
                i += 1;
                max_rss_mb = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--max-rss-mb needs an integer MiB budget");
                            std::process::exit(2);
                        }),
                );
            }
            flag if flag.starts_with("--") => {
                eprintln!("unexpected argument {flag}");
                std::process::exit(2);
            }
            name => positional.push(name.to_string()),
        }
        i += 1;
    }

    if positional.first().map(String::as_str) == Some("lint") {
        run_lint(positional.get(1).map(String::as_str));
        return;
    }
    if positional.first().map(String::as_str) == Some("check") {
        if list {
            run_check_list();
            return;
        }
        let json = json_dir.is_some();
        match positional.get(1).map(String::as_str) {
            None | Some("interleave") => run_check_interleave(scenario.as_deref()),
            Some("protocol") => run_check_protocol(scenario.as_deref(), full, compare, json),
            Some("liveness") => run_check_liveness(scenario.as_deref(), full, compare, json),
            Some("mutants") => run_check_mutants(),
            Some("tla") => run_check_tla(scenario.as_deref(), bench_out.as_deref()),
            Some("hb") => {
                let Some(path) = positional.get(2) else {
                    eprintln!("usage: repro check hb FILE.jsonl");
                    std::process::exit(2);
                };
                run_check_hb(path);
            }
            Some(other) => {
                eprintln!(
                    "unknown check '{other}' (expected: interleave, protocol, liveness, mutants, tla, hb FILE.jsonl)"
                );
                std::process::exit(2);
            }
        }
        return;
    }
    if positional.first().map(String::as_str) == Some("conform") {
        let Some(path) = positional.get(1) else {
            eprintln!("usage: repro conform FILE.jsonl [--policy NAME]");
            std::process::exit(2);
        };
        run_conform(path, &policy_name, args.iter().any(|a| a == "--policy"));
        return;
    }
    if positional.first().map(String::as_str) == Some("trace") {
        let Some(app) = positional.get(1) else {
            eprintln!("usage: repro trace <app> [--scale S] [--policy P] [--seed N] [--json DIR]");
            std::process::exit(2);
        };
        run_trace(
            app,
            scale,
            &policy_name,
            seed,
            json_dir.as_deref().unwrap_or("trace-out"),
        );
        return;
    }
    if positional.first().map(String::as_str) == Some("chaos") {
        let Some(app) = positional.get(1) else {
            eprintln!(
                "usage: repro chaos <app> --faults SPEC [--scale S] [--policy P] [--seed N] [--json DIR] [--validate]"
            );
            std::process::exit(2);
        };
        let Some(spec) = fault_spec else {
            eprintln!("repro chaos needs --faults SPEC (e.g. drop=0.05,kill=3@40%)");
            std::process::exit(2);
        };
        run_chaos(
            app,
            scale,
            &policy_name,
            &spec,
            seed,
            json_dir.as_deref(),
            validate,
        );
        return;
    }
    if positional.first().map(String::as_str) == Some("bench") {
        if positional.len() > 1 {
            eprintln!("usage: repro bench [--suite quick|full] [--seed S] [--out FILE] [--baseline FILE] [--threshold PCT] [--no-gate] | repro bench --check FILE");
            std::process::exit(2);
        }
        if let Some(path) = check_path {
            run_bench_check(&path);
            return;
        }
        run_bench(
            suite,
            seed.unwrap_or(0),
            bench_out.as_deref(),
            baseline.as_deref(),
            threshold,
            gate,
        );
        return;
    }
    if positional.first().map(String::as_str) == Some("scale") {
        if positional.len() > 1 {
            eprintln!(
                "usage: repro scale [--seed S] [--out FILE] [--baseline FILE] [--threshold PCT] [--no-gate] [--max-tasks N] [--max-wall-s SEC] [--max-rss-mb MiB] | repro scale --check FILE"
            );
            std::process::exit(2);
        }
        if let Some(path) = check_path {
            run_scale_check(&path);
            return;
        }
        run_scale_sweep(
            seed.unwrap_or(0),
            bench_out.as_deref(),
            baseline.as_deref(),
            threshold,
            gate,
            max_tasks,
            max_wall_s,
            max_rss_mb,
        );
        return;
    }
    if positional.len() > 1 {
        eprintln!("unexpected argument {}", positional[1]);
        std::process::exit(2);
    }
    let experiment = positional.pop().unwrap_or_else(|| "all".into());

    let run = |name: &str| experiment == "all" || experiment == name;
    let mut ran_any = false;

    macro_rules! experiment {
        ($name:literal, $rows:expr, $printer:expr) => {
            if run($name) {
                ran_any = true;
                let rows = $rows;
                $printer(&rows);
                if let Some(dir) = &json_dir {
                    write_json(dir, $name, &rows);
                }
            }
        };
    }

    experiment!("fig3", bench::fig3_steal_ratio(scale), print_fig3);
    experiment!("fig4", bench::fig4_sequential(scale), print_fig4);
    experiment!("fig5", bench::fig5_speedups(scale), print_fig5);
    if run("fig6") || run("table2") || run("table3") {
        ran_any = true;
        let rows = bench::three_way(scale);
        print_fig6(&rows);
        print_table2(&rows);
        print_table3(&rows);
        if let Some(dir) = &json_dir {
            write_json(dir, "three_way", &rows);
        }
    }
    experiment!("fig7", bench::fig7_utilization(scale), print_fig7);
    experiment!("table1", bench::table1_granularity(scale), print_table1);
    experiment!(
        "granularity",
        bench::granularity_study(scale),
        print_granularity
    );
    experiment!("uts", bench::uts_study(scale), print_uts);
    experiment!("adaptive", bench::adaptive_study(scale), print_adaptive);
    if run("ablation") {
        ran_any = true;
        let chunk = bench::ablation_chunk(scale);
        let rule = bench::ablation_mapping_rule(scale);
        let order = bench::ablation_victim_order(scale);
        print_ablation("remote chunk size (paper §V.B.3: 2 is best)", &chunk);
        print_ablation("Algorithm 1 line 5 mapping rule", &rule);
        print_ablation("ring victim ordering (footnote 2)", &order);
        if let Some(dir) = &json_dir {
            write_json(dir, "ablation_chunk", &chunk);
            write_json(dir, "ablation_mapping_rule", &rule);
            write_json(dir, "ablation_victim_order", &order);
        }
    }

    if !ran_any {
        eprintln!("unknown experiment '{experiment}'");
        eprintln!(
            "experiments: fig3 fig4 fig5 fig6 fig7 table1 table2 table3 granularity uts adaptive ablation all"
        );
        eprintln!("or: repro trace <app> [--scale S] [--policy P] [--seed N] [--json DIR]");
        eprintln!(
            "or: repro chaos <app> --faults SPEC [--scale S] [--policy P] [--seed N] [--json DIR] [--validate]"
        );
        eprintln!(
            "or: repro bench [--suite quick|full] [--seed S] [--out FILE] [--baseline FILE] [--threshold PCT] [--no-gate] [--check FILE]"
        );
        eprintln!("or: repro lint [ROOT]");
        eprintln!(
            "or: repro check [interleave | protocol | liveness | mutants | tla | hb FILE.jsonl] [--scenario NAME] [--list] [--full] [--compare] [--json] [--out FILE]"
        );
        eprintln!("or: repro conform FILE.jsonl [--policy NAME]");
        std::process::exit(2);
    }
}

/// `--seed` accepts decimal or `0x` hex.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn run_chaos(
    app_name: &str,
    scale: Scale,
    policy_name: &str,
    spec_text: &str,
    seed: Option<u64>,
    json_dir: Option<&str>,
    validate: bool,
) {
    let spec = match distws_sim::FaultSpec::parse(spec_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        }
    };
    let seed = seed.unwrap_or(0x5EED);
    let (rows, validation) = if validate {
        match bench::chaos_sweep_validated(app_name, policy_name, &spec, scale, seed) {
            Some((rows, v)) => (rows, Some(v)),
            None => (Vec::new(), None),
        }
    } else {
        (
            bench::chaos_sweep(app_name, policy_name, &spec, scale, seed).unwrap_or_default(),
            None,
        )
    };
    if rows.is_empty() {
        let names: Vec<String> = bench::suite(scale).iter().map(|a| a.name()).collect();
        eprintln!(
            "unknown app '{app_name}' or policy '{policy_name}'; apps: {}",
            names.join(" ")
        );
        std::process::exit(2);
    }
    print_chaos(spec_text, seed, &rows);
    if let Some(v) = validation {
        println!(
            "(happens-before validator: {} levels, {} events, {} task lifecycles — all causally ordered, exactly-once)",
            v.levels_validated, v.events_checked, v.tasks_checked
        );
        println!(
            "(steal-order conformance: {} attempts replayed, {} successes justified against Algorithm 1)",
            v.steal_attempts_checked, v.steals_justified
        );
    }
    if let Some(dir) = json_dir {
        let slug = rows[0].app.to_ascii_lowercase().replace(' ', "_");
        write_json(dir, &format!("chaos_{slug}"), &rows);
    }
}

/// `repro lint [ROOT]` — the determinism lint over the workspace.
fn run_lint(root: Option<&str>) {
    let root = std::path::PathBuf::from(root.unwrap_or("."));
    let violations = match distws_analyze::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("repro lint: cannot walk {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("repro lint: workspace clean (hash-iter, wall-clock, unseeded-rng, unwrap-hot-path, safety-comment, net-process, unbounded-spin)");
    } else {
        eprintln!("repro lint: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}

/// `repro check --list` — enumerate every builtin checker scenario.
fn run_check_list() {
    println!("interleave scenarios (repro check interleave --scenario NAME):");
    for s in distws_analyze::builtin_scenarios() {
        println!("  {}", s.name);
    }
    println!("  shared_fifo");
    println!(
        "protocol scenarios (repro check protocol|liveness --scenario NAME; also repro check tla):"
    );
    for s in distws_analyze::protocol::builtin_scenarios() {
        let mut notes: Vec<&str> = Vec::new();
        if s.faults.kill_place.is_some() || s.faults.max_drops > 0 || s.faults.max_dups > 0 {
            notes.push("faults");
        }
        if !s.full_ok {
            notes.push("scale: reduced-only");
        }
        println!(
            "  {:<24} {:>7}  {} places x {} workers, {} tasks{}{}",
            s.name,
            distws_analyze::era_name(s.era),
            s.places,
            s.workers_per_place,
            s.tasks.len(),
            if notes.is_empty() { "" } else { " — " },
            notes.join(", ")
        );
    }
    println!("liveness properties (repro check liveness):");
    for p in distws_analyze::Property::ALL {
        println!("  {:<28} {}", p.name(), p.formula());
    }
    println!("protocol mutants (repro check mutants):");
    for m in distws_analyze::ProtocolMutant::ALL {
        println!(
            "  {:<28} {:<9} caught by {} on {}",
            m.name(),
            if m.is_livelock() {
                "livelock"
            } else {
                "safety"
            },
            m.catch_property(),
            m.catch_scenario()
        );
    }
}

/// Print one checker results table and exit nonzero on violations.
fn print_outcomes(results: &[(&str, distws_analyze::Outcome)], what: &str) {
    println!(
        "{:<22} {:>10} {:>10} {:>11}",
        "scenario", "states", "terminals", "violations"
    );
    let mut failed = false;
    for (name, out) in results {
        println!(
            "{:<22} {:>10} {:>10} {:>11}",
            name,
            out.states,
            out.terminals,
            out.violations.len()
        );
        for v in &out.violations {
            eprintln!("  {name}: {v}");
            failed = true;
        }
    }
    if failed {
        eprintln!("repro check: {what} violations found");
        std::process::exit(1);
    }
}

/// `repro check [interleave]` — bounded-DFS interleaving checker over
/// the Chase-Lev deque and shared-FIFO models.
fn run_check_interleave(scenario: Option<&str>) {
    hr("Bounded interleaving check — Chase-Lev deque + shared FIFO models");
    let mut results: Vec<(&str, distws_analyze::Outcome)> = Vec::new();
    match scenario {
        Some("shared_fifo") => results.push((
            "shared_fifo",
            distws_analyze::explore_fifo(&distws_analyze::fifo_scenario()),
        )),
        Some(name) => {
            let Some(sc) = distws_analyze::builtin_scenarios()
                .into_iter()
                .find(|s| s.name == name)
            else {
                eprintln!("unknown interleave scenario '{name}' (see repro check --list)");
                std::process::exit(2);
            };
            results.push((sc.name, distws_analyze::explore(&sc)));
        }
        None => {
            results = distws_analyze::check_all();
            results.push((
                "shared_fifo",
                distws_analyze::explore_fifo(&distws_analyze::fifo_scenario()),
            ));
        }
    }
    print_outcomes(&results, "interleaving");
    println!("(no lost task, no double-take, no use-after-grow on any explored schedule)");
}

/// State cap for `--full` runs of the scale scenarios (the ones whose
/// unreduced state space is the point of the reductions): exploration
/// truncates there and the row is marked, never reported as proof.
const FULL_EXPLORE_CAP: u64 = 2_000_000;

/// Resolve `--scenario` (or all builtin protocol scenarios).
fn protocol_scenario_set(scenario: Option<&str>) -> Vec<distws_analyze::ProtocolScenario> {
    match scenario {
        Some(name) => match distws_analyze::scenario_by_name(name) {
            Some(sc) => vec![sc],
            None => {
                eprintln!("unknown protocol scenario '{name}' (see repro check --list)");
                std::process::exit(2);
            }
        },
        None => distws_analyze::protocol_scenarios(),
    }
}

/// The `--scenario`/`REPRO_STATE_CAP` state-cap policy shared by the
/// protocol and liveness checks.
fn explore_cap(full: bool, sc: &distws_analyze::ProtocolScenario) -> Option<u64> {
    (full && !sc.full_ok)
        .then_some(FULL_EXPLORE_CAP)
        .or_else(|| {
            // Debugging knob: bound any run's stored states.
            std::env::var("REPRO_STATE_CAP")
                .ok()
                .and_then(|v| v.parse().ok())
        })
}

/// `repro check protocol [--scenario NAME] [--full] [--compare]
/// [--json]` — explicit-state model checking of Algorithm 1 (sim and
/// cluster eras). Default mode is reduced (POR + symmetry); `--full`
/// forces the unreduced exploration (capped on scale scenarios);
/// `--compare` runs both and cross-validates the verdicts; `--json`
/// prints the stats table as JSON instead of the human table.
fn run_check_protocol(scenario: Option<&str>, full: bool, compare: bool, json: bool) {
    use distws_analyze::Mode;
    if compare {
        run_check_protocol_compare(&protocol_scenario_set(scenario));
        return;
    }
    if !json {
        hr("Algorithm 1 protocol model check — mapping, steal order, chunks, latch, recovery");
    }
    let scs = protocol_scenario_set(scenario);
    let mode = if full { Mode::Full } else { Mode::Reduced };
    if !json {
        println!(
            "{:<24} {:>7} {:>9} {:>12} {:>7} {:>8} {:>8} {:>8}",
            "scenario", "era", "states", "transitions", "peakq", "ample", "proviso", "wall ms"
        );
    }
    let mut failed = false;
    let mut truncated = false;
    let mut rows = Vec::new();
    for sc in &scs {
        let cap = explore_cap(full, sc);
        let t0 = std::time::Instant::now();
        let (out, stats) = distws_analyze::explore_protocol_mode(sc, None, mode, cap);
        let wall = t0.elapsed().as_millis();
        if json {
            rows.push(checkjson::protocol_row(
                sc.name,
                distws_analyze::era_name(sc.era),
                &out,
                &stats,
                wall as u64,
            ));
        } else {
            println!(
                "{:<24} {:>7} {:>8}{} {:>12} {:>7} {:>8} {:>8} {:>8}",
                sc.name,
                distws_analyze::era_name(sc.era),
                out.states,
                if stats.truncated { "*" } else { " " },
                stats.transitions,
                stats.peak_queue,
                stats.ample_states,
                stats.proviso_fallbacks,
                wall
            );
        }
        truncated |= stats.truncated;
        for v in &out.violations {
            eprintln!("  {}: {v}", sc.name);
            failed = true;
        }
    }
    if json {
        let report =
            checkjson::check_report("protocol", if full { "full" } else { "reduced" }, rows);
        println!("{}", report.render_pretty());
    } else if truncated {
        println!(
            "(* capped at {FULL_EXPLORE_CAP} states: full exploration of a scale scenario is a \
             partial verdict — run reduced mode for the proof)"
        );
    }
    if failed {
        eprintln!("repro check: protocol violations found");
        std::process::exit(1);
    }
    if !json {
        println!(
            "(no sensitive migration, exactly-once, no lost latch decrement, \
             termination — on every explored schedule; mode: {})",
            if full { "full" } else { "reduced" }
        );
    }
}

/// `repro check liveness [--scenario NAME] [--full] [--compare]
/// [--json]` — temporal checking over the protocol scenarios: the
/// three weak-fairness properties (eventual-execution,
/// lifeline-wakeup, steal-progress) via the acyclicity certificate +
/// nested-DFS layer. `--full` runs the phase-1 scan unreduced;
/// `--compare` cross-validates reduced vs full verdicts per property.
fn run_check_liveness(scenario: Option<&str>, full: bool, compare: bool, json: bool) {
    use distws_analyze::liveness::check_liveness;
    use distws_analyze::Mode;
    let scs = protocol_scenario_set(scenario);
    if compare {
        run_check_liveness_compare(&scs);
        return;
    }
    if !json {
        hr("Protocol liveness check — eventual execution, lifeline wakeup, steal progress");
        println!(
            "{:<24} {:>7} {:>9} {:>12} {:>7} {:>22} {:>8}",
            "scenario", "era", "states", "transitions", "cyclic", "verdicts (P1/P2/P3)", "wall ms"
        );
    }
    let mut failed = false;
    let mut rows = Vec::new();
    for sc in &scs {
        let cap = explore_cap(full, sc);
        let mode = if full { Mode::Full } else { Mode::Reduced };
        let t0 = std::time::Instant::now();
        let reports = check_liveness(sc, None, mode, cap);
        let wall = t0.elapsed().as_millis();
        if json {
            rows.push(checkjson::liveness_row(
                sc.name,
                distws_analyze::era_name(sc.era),
                &reports,
                wall as u64,
            ));
        } else {
            let verdicts: Vec<&str> = reports
                .iter()
                .map(|r| {
                    if r.truncated {
                        "cap"
                    } else if r.holds {
                        "ok"
                    } else {
                        "FAIL"
                    }
                })
                .collect();
            let first = &reports[0];
            println!(
                "{:<24} {:>7} {:>8}{} {:>12} {:>7} {:>22} {:>8}",
                sc.name,
                distws_analyze::era_name(sc.era),
                first.graph_states,
                if reports.iter().any(|r| r.truncated) {
                    "*"
                } else {
                    " "
                },
                first.graph_transitions,
                if first.cyclic { "yes" } else { "no" },
                verdicts.join("/"),
                wall
            );
        }
        for r in &reports {
            if !r.holds {
                failed = true;
                eprintln!("  {}: {} violated", sc.name, r.property.name());
                if let Some(lasso) = &r.lasso {
                    print_lasso(sc.name, lasso);
                }
            }
        }
    }
    if json {
        let report =
            checkjson::check_report("liveness", if full { "full" } else { "reduced" }, rows);
        println!("{}", report.render_pretty());
    }
    if failed {
        eprintln!("repro check: liveness violations found");
        std::process::exit(1);
    }
    if !json {
        println!(
            "(every task eventually executes, every pending lifeline push wakes its \
             worker, no fair steal-retry livelock — under weak fairness on workers \
             and delivery; mode: {})",
            if full { "full" } else { "reduced" }
        );
    }
}

/// Print a lasso counterexample: stem then cycle, elided in the
/// middle when very long.
fn print_lasso(scenario: &str, lasso: &distws_analyze::Lasso) {
    let print_part = |label: &str, steps: &[String]| {
        eprintln!("  {scenario}: {label} ({} steps):", steps.len());
        const HEAD: usize = 12;
        const TAIL: usize = 6;
        if steps.len() <= HEAD + TAIL + 2 {
            for s in steps {
                eprintln!("    {s}");
            }
        } else {
            for s in &steps[..HEAD] {
                eprintln!("    {s}");
            }
            eprintln!("    ... ({} steps elided)", steps.len() - HEAD - TAIL);
            for s in &steps[steps.len() - TAIL..] {
                eprintln!("    {s}");
            }
        }
    };
    if !lasso.stem.is_empty() {
        print_part("stem", &lasso.stem);
    }
    print_part("cycle (repeats forever)", &lasso.cycle);
}

/// `repro check liveness --compare` — reduced and full phase-1 scans
/// must agree on every property verdict (the liveness counterpart of
/// the PR 8 `--full --compare` cross-check).
fn run_check_liveness_compare(scs: &[distws_analyze::ProtocolScenario]) {
    use distws_analyze::liveness::check_liveness;
    use distws_analyze::Mode;
    println!(
        "{:<24} {:>12} {:>12} {:>22} {:>9}",
        "scenario", "full states", "red. states", "verdicts (P1/P2/P3)", "agree"
    );
    let mut failed = false;
    for sc in scs {
        if !sc.full_ok {
            println!(
                "{:<24} {:>12} {:>12} {:>22} {:>9}",
                sc.name, "(skipped)", "-", "-", "-"
            );
            continue;
        }
        let full = check_liveness(sc, None, Mode::Full, None);
        let reduced = check_liveness(sc, None, Mode::Reduced, None);
        let agree = full
            .iter()
            .zip(&reduced)
            .all(|(f, r)| f.holds == r.holds && f.cyclic == r.cyclic);
        let verdicts: Vec<&str> = reduced
            .iter()
            .map(|r| if r.holds { "ok" } else { "FAIL" })
            .collect();
        println!(
            "{:<24} {:>12} {:>12} {:>22} {:>9}",
            sc.name,
            full[0].graph_states,
            reduced[0].graph_states,
            verdicts.join("/"),
            if agree { "agree" } else { "DIVERGED" }
        );
        if !agree {
            for (f, r) in full.iter().zip(&reduced) {
                if f.holds != r.holds || f.cyclic != r.cyclic {
                    eprintln!(
                        "  {}: {} diverged (full holds={} cyclic={}, reduced holds={} cyclic={})",
                        sc.name,
                        f.property.name(),
                        f.holds,
                        f.cyclic,
                        r.holds,
                        r.cyclic
                    );
                }
            }
            failed = true;
        }
        for r in &full {
            if !r.holds {
                eprintln!("  {}: {} violated (full mode)", sc.name, r.property.name());
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("repro check: liveness reduced/full cross-validation failed");
        std::process::exit(1);
    }
    println!(
        "(reduced and full liveness verdicts agree on every property; skipped rows are scale scenarios)"
    );
}

/// `repro check protocol --full --compare` — cross-validate the
/// reductions: on every full-explorable scenario, the reduced and full
/// explorations must return the same verdict with
/// states(reduced) ≤ states(full).
fn run_check_protocol_compare(scs: &[distws_analyze::ProtocolScenario]) {
    use distws_analyze::Mode;
    println!(
        "{:<24} {:>12} {:>12} {:>7} {:>9} {:>9}",
        "scenario", "full states", "red. states", "ratio", "wall ms", "verdict"
    );
    let mut failed = false;
    for sc in scs {
        if !sc.full_ok {
            println!(
                "{:<24} {:>12} {:>12} {:>7} {:>9} {:>9}",
                sc.name, "(skipped)", "-", "-", "-", "-"
            );
            continue;
        }
        let t0 = std::time::Instant::now();
        let (full, _) = distws_analyze::explore_protocol_mode(sc, None, Mode::Full, None);
        let (reduced, _) = distws_analyze::explore_protocol_mode(sc, None, Mode::Reduced, None);
        let wall = t0.elapsed().as_millis();
        let agree = full.violations.is_empty() == reduced.violations.is_empty();
        let shrank = reduced.states <= full.states;
        println!(
            "{:<24} {:>12} {:>12} {:>6.1}x {:>9} {:>9}",
            sc.name,
            full.states,
            reduced.states,
            full.states as f64 / reduced.states.max(1) as f64,
            wall,
            if agree && shrank { "agree" } else { "DIVERGED" }
        );
        if !agree {
            eprintln!(
                "  {}: verdicts diverged (full {:?}, reduced {:?})",
                sc.name, full.violations, reduced.violations
            );
            failed = true;
        }
        if !shrank {
            eprintln!(
                "  {}: reduction grew the state space ({} > {})",
                sc.name, reduced.states, full.states
            );
            failed = true;
        }
        for v in &full.violations {
            eprintln!("  {}: {v}", sc.name);
            failed = true;
        }
    }
    if failed {
        eprintln!("repro check: reduced/full cross-validation failed");
        std::process::exit(1);
    }
    println!(
        "(reduced and full explorations agree on every verdict; skipped rows are scale scenarios)"
    );
}

/// `repro check tla [--scenario NAME] [--out FILE]` — export a
/// scenario's transition relation as a TLC-checkable TLA+ module. The
/// module name is the output file stem (TLC requires them to match),
/// or the scenario name when printing to stdout.
fn run_check_tla(scenario: Option<&str>, out: Option<&str>) {
    let name = scenario.unwrap_or("sensitive_pinning");
    let Some(sc) = distws_analyze::scenario_by_name(name) else {
        eprintln!("unknown protocol scenario '{name}' (see repro check --list)");
        std::process::exit(2);
    };
    match out {
        Some(path) => {
            let module = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(sc.name);
            let text = distws_analyze::export_tla(&sc, module);
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("repro check tla: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "repro check tla: wrote module {module} (scenario {}) to {path}",
                sc.name
            );
        }
        None => {
            print!("{}", distws_analyze::export_tla(&sc, sc.name));
        }
    }
}

/// `repro check mutants` — re-inject the seeded protocol bugs (safety
/// *and* livelock) and require each one caught by its designated
/// property, reporting what actually caught it. A mutant whose
/// exploration *panics* is an ERROR (exit 3), not a catch: a crash
/// proves nothing about the checker's detection power, and conflating
/// the two exit paths once let a crash masquerade as a catch.
fn run_check_mutants() {
    hr("Protocol mutation smoke — every seeded Algorithm 1 bug must be caught");
    println!(
        "{:<28} {:<20} {:>8} {:<19} caught by",
        "mutant", "scenario", "caught", "property"
    );
    let mut escaped = false;
    let mut errored = false;
    for check in distws_analyze::check_protocol_mutants() {
        let status = if check.error.is_some() {
            errored = true;
            "ERROR"
        } else if check.caught {
            "yes"
        } else {
            escaped = true;
            "NO"
        };
        println!(
            "{:<28} {:<20} {:>8} {:<19} {}",
            check.mutant,
            check.scenario,
            status,
            check.property,
            if check.caught_by.is_empty() {
                "-".to_string()
            } else {
                check.caught_by.join(", ")
            }
        );
        if let Some(e) = &check.error {
            eprintln!("  {}: exploration panicked: {e}", check.mutant);
        }
        // Livelock mutants must come with a concrete counterexample:
        // print the lasso so a regression is debuggable from CI logs.
        if let Some(lasso) = &check.lasso {
            print_lasso(check.scenario, lasso);
        }
    }
    if errored {
        eprintln!("repro check: mutant exploration errored (a crash is not a catch)");
        std::process::exit(3);
    }
    if escaped {
        eprintln!("repro check: a seeded protocol mutant escaped its designated property");
        std::process::exit(1);
    }
    println!(
        "(the checker has the detection power the protocol safety and liveness \
         properties require)"
    );
}

/// `repro conform FILE.jsonl [--policy NAME]` — replay a trace against
/// the Algorithm 1 steal-order automaton.
fn run_conform(path: &str, policy_name: &str, explicit_policy: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("repro conform: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let cfg = if explicit_policy {
        match distws_analyze::ConformConfig::for_policy(policy_name) {
            Some(c) => c,
            None => {
                eprintln!(
                    "unknown policy '{policy_name}' (X10WS DistWS DistWS-NS RandomWS LifelineWS AdaptiveWS)"
                );
                std::process::exit(2);
            }
        }
    } else {
        distws_analyze::ConformConfig::generic()
    };
    let report = distws_analyze::conform_str(&text, &cfg);
    for v in &report.violations {
        println!("{path}: {v}");
    }
    println!(
        "{path}: {} events, {} workers, {} attempts, {} successes, {} probes{}, {} violation(s)",
        report.events,
        report.workers,
        report.attempts,
        report.successes,
        report.probes,
        if report.full_vocabulary {
            ""
        } else {
            " (legacy vocabulary: chunk checks only)"
        },
        report.violations.len()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}

/// `repro check hb FILE.jsonl` — happens-before validation of a trace.
fn run_check_hb(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("repro check hb: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = distws_analyze::validate_str(&text);
    for v in &report.violations {
        println!("{path}: {v}");
    }
    println!(
        "{path}: {} events, {} tasks, {} workers, {} violation(s)",
        report.events,
        report.tasks,
        report.workers,
        report.violations.len()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}

/// `repro cluster <app> --places N ...` — run a real multi-process
/// cluster over sockets, optionally SIGKILLing places on schedule,
/// then merge the per-place traces and validate them.
fn run_cluster_cmd(args: &[String]) {
    use distws_cluster::{parse_kill_spec, run_cluster, LaunchConfig, Transport};
    let usage = "usage: repro cluster <app> --places N [--wpp N] [--policy P] [--seed S] \
                 [--transport unix|tcp] [--kill \"place@ms[,restart@ms][;...]\"] [--dir DIR] \
                 [--round-timeout-ms MS] [--run-deadline-ms MS]";
    let mut app: Option<String> = None;
    let mut places: u32 = 4;
    let mut wpp: u32 = 2;
    let mut policy = "distws".to_string();
    let mut seed: u64 = 42;
    let mut transport = Transport::Unix;
    let mut kills = Vec::new();
    let mut dir: Option<String> = None;
    let mut round_timeout_ms: u64 = 60_000;
    let mut run_deadline_ms: u64 = 120_000;
    let mut i = 0;
    let take = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{usage}");
            std::process::exit(2);
        })
    };
    let parse_or_die = |what: &str, s: String| -> u64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("repro cluster: bad {what} `{s}`");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--places" => places = parse_or_die("--places", take(&mut i)) as u32,
            "--wpp" => wpp = parse_or_die("--wpp", take(&mut i)) as u32,
            "--policy" => policy = take(&mut i),
            "--seed" => seed = parse_or_die("--seed", take(&mut i)),
            "--transport" => {
                transport = match take(&mut i).as_str() {
                    "unix" => Transport::Unix,
                    "tcp" => Transport::Tcp,
                    other => {
                        eprintln!("repro cluster: unknown transport `{other}` (unix|tcp)");
                        std::process::exit(2);
                    }
                }
            }
            "--kill" => {
                kills = parse_kill_spec(&take(&mut i)).unwrap_or_else(|e| {
                    eprintln!("repro cluster: {e}");
                    std::process::exit(2);
                })
            }
            "--dir" => dir = Some(take(&mut i)),
            "--round-timeout-ms" => {
                round_timeout_ms = parse_or_die("--round-timeout-ms", take(&mut i))
            }
            "--run-deadline-ms" => {
                run_deadline_ms = parse_or_die("--run-deadline-ms", take(&mut i))
            }
            flag if flag.starts_with("--") => {
                eprintln!("repro cluster: unexpected argument {flag}\n{usage}");
                std::process::exit(2);
            }
            name if app.is_none() => app = Some(name.to_string()),
            other => {
                eprintln!("repro cluster: unexpected argument {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(app) = app else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    if places == 0 {
        eprintln!("repro cluster: --places must be at least 1");
        std::process::exit(2);
    }
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("repro cluster: cannot locate own executable: {e}");
        std::process::exit(2);
    });
    let dir = std::path::PathBuf::from(dir.unwrap_or_else(|| "cluster-out".to_string()));
    let cfg = LaunchConfig {
        app: app.clone(),
        policy: policy.clone(),
        places,
        wpp,
        seed,
        transport,
        dir: dir.clone(),
        kills,
        round_timeout_ms,
        run_deadline_ms,
        exe,
        place_args: vec!["cluster-place".to_string()],
    };
    hr(&format!(
        "Cluster — {app} / {policy}, {places} place processes x {wpp} workers"
    ));
    let outcome = match run_cluster(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro cluster: launch failed: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "coordinator exit {}; {} kill(s) delivered; places_failed at shutdown: {}",
        outcome.exit_code,
        outcome.kills_delivered,
        if outcome.places_failed == u64::MAX {
            "unknown".to_string()
        } else {
            outcome.places_failed.to_string()
        }
    );
    println!(
        "merged trace {} ({} lines kept, {} torn, {} superseded, {} dup spawns dropped)",
        outcome.merged_path.display(),
        outcome.merge_stats.lines_out,
        outcome.merge_stats.dropped_torn,
        outcome.merge_stats.dropped_superseded,
        outcome.merge_stats.dropped_dup_spawn,
    );
    for v in outcome.hb_violations.iter().take(20) {
        println!("hb: {v}");
    }
    for v in outcome.conform_violations.iter().take(20) {
        println!("conform: {v}");
    }
    println!(
        "happens-before: {} violation(s); conformance: {} violation(s)",
        outcome.hb_violations.len(),
        outcome.conform_violations.len()
    );
    if let Some(report) = &outcome.report {
        println!("report.json:\n{report}");
    }
    if !outcome.ok() {
        std::process::exit(1);
    }
}

/// Hidden per-place entry point: `repro cluster-place --place N ...`,
/// exec'd by the launcher for each place process.
fn run_cluster_place_cmd(args: &[String]) {
    use distws_cluster::{run_place, PlaceConfig, Transport};
    let mut cfg = PlaceConfig::new(0, 1, 2, std::path::PathBuf::from("."), "quicksort");
    let mut trace: Option<String> = None;
    let mut i = 0;
    let take = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("repro cluster-place: missing value for {}", args[*i - 1]);
            std::process::exit(2);
        })
    };
    let parse_or_die = |what: &str, s: String| -> u64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("repro cluster-place: bad {what} `{s}`");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--place" => cfg.place = parse_or_die("--place", take(&mut i)) as u32,
            "--places" => cfg.places = parse_or_die("--places", take(&mut i)) as u32,
            "--wpp" => cfg.wpp = parse_or_die("--wpp", take(&mut i)) as u32,
            "--epoch" => cfg.epoch = parse_or_die("--epoch", take(&mut i)) as u32,
            "--transport" => {
                cfg.transport = match take(&mut i).as_str() {
                    "tcp" => Transport::Tcp,
                    _ => Transport::Unix,
                }
            }
            "--dir" => cfg.dir = std::path::PathBuf::from(take(&mut i)),
            "--app" => cfg.app = take(&mut i),
            "--policy" => cfg.policy = take(&mut i),
            "--seed" => cfg.seed = parse_or_die("--seed", take(&mut i)),
            "--trace" => trace = Some(take(&mut i)),
            "--report" => cfg.report_path = Some(std::path::PathBuf::from(take(&mut i))),
            "--round-timeout-ms" => {
                cfg.round_timeout_ms = parse_or_die("--round-timeout-ms", take(&mut i))
            }
            "--run-deadline-ms" => {
                cfg.run_deadline_ms = parse_or_die("--run-deadline-ms", take(&mut i))
            }
            other => {
                eprintln!("repro cluster-place: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg.trace_path = match trace {
        Some(t) => std::path::PathBuf::from(t),
        None => cfg
            .dir
            .join(format!("trace-p{}-e{}.jsonl", cfg.place, cfg.epoch)),
    };
    match run_place(cfg) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("repro cluster-place: {e}");
            std::process::exit(2);
        }
    }
}

fn print_chaos(spec_text: &str, seed: u64, rows: &[bench::ChaosRow]) {
    hr(&format!(
        "Chaos — {} / {} under \"{}\" (seed {:#x})",
        rows[0].app, rows[0].scheduler, spec_text, seed
    ));
    println!(
        "{:>6} {:>13} {:>8} {:>7} {:>6} {:>9} {:>8} {:>8} {:>10} {:>7} {:>7}",
        "level",
        "makespan(ms)",
        "degr(%)",
        "drops",
        "dups",
        "timeouts",
        "retries",
        "retrans",
        "recovered",
        "leases",
        "failed"
    );
    for r in rows {
        println!(
            "{:>6.2} {:>13.3} {:>8.1} {:>7} {:>6} {:>9} {:>8} {:>8} {:>10} {:>7} {:>7}",
            r.level,
            r.makespan_ms,
            r.degradation_pct,
            r.msgs_dropped,
            r.msgs_duplicated,
            r.steal_timeouts,
            r.steal_retries,
            r.retransmissions,
            r.tasks_recovered,
            r.lease_reclaims,
            r.places_failed
        );
    }
    println!("(every level validated its application output and executed every spawned task exactly once)");
}

/// Streams JSONL straight to the trace file through a buffered sink
/// while keeping the events in memory for the Chrome exporter and the
/// conformance replay.
struct TeeSink {
    events: Vec<distws_trace::TraceEvent>,
    file: distws_trace::BufferedJsonlSink<std::fs::File>,
}

impl TeeSink {
    fn jsonl(&self) -> String {
        // Rebuilt from the retained events: byte-identical to the file
        // contents, since the buffered sink wrote exactly these lines.
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_jsonl());
            s.push('\n');
        }
        s
    }
}

impl distws_trace::TraceSink for TeeSink {
    fn record(&mut self, ev: distws_trace::TraceEvent) {
        self.file.record(ev);
        self.events.push(ev);
    }

    fn flush(&mut self) {
        self.file.flush();
    }
}

fn run_trace(app_name: &str, scale: Scale, policy_name: &str, seed: Option<u64>, dir: &str) {
    use distws_sim::{SimConfig, Simulation};

    let Some(app) = bench::app_by_name(app_name, scale) else {
        let names: Vec<String> = bench::suite(scale).iter().map(|a| a.name()).collect();
        eprintln!("unknown app '{app_name}'; apps: {}", names.join(" "));
        std::process::exit(2);
    };
    let Some(policy) = bench::policy_by_name(policy_name) else {
        eprintln!("unknown policy '{policy_name}' (X10WS DistWS DistWS-NS RandomWS LifelineWS AdaptiveWS)");
        std::process::exit(2);
    };
    let cluster = bench::eval_cluster(scale);

    // Pass 1 (untraced) sizes the sampling grid: ~240 samples across
    // the run regardless of app or scale.
    let probe = bench::policy_by_name(policy_name).unwrap();
    let mut pre_cfg = SimConfig::new(cluster.clone());
    if let Some(s) = seed {
        pre_cfg.seed = s;
    }
    let effective_seed = pre_cfg.seed;
    let pre = Simulation::with_config(pre_cfg, probe).run_app(app.as_ref());
    let interval = (pre.makespan_ns / 240).max(1);

    let mut cfg = SimConfig::new(cluster.clone());
    cfg.seed = effective_seed;
    cfg.sample_interval_ns = Some(interval);
    // The JSONL stream goes straight to disk through the buffered sink
    // as the simulation runs, so a large trace never sits in memory
    // twice.
    std::fs::create_dir_all(dir).expect("create trace dir");
    let slug = app.name().to_ascii_lowercase().replace(' ', "_");
    let trace_path = format!("{dir}/{slug}.trace.jsonl");
    let mut sink = TeeSink {
        events: Vec::new(),
        file: distws_trace::BufferedJsonlSink::new(
            std::fs::File::create(&trace_path).expect("create trace file"),
        ),
    };
    let app = bench::app_by_name(app_name, scale).unwrap();
    let (report, series) =
        Simulation::with_config(cfg, policy).run_app_traced(app.as_ref(), &mut sink);
    let series = series.expect("sampling was configured");

    println!(
        "{} / {} on {} places x {} workers, seed {:#x} ({} events traced)",
        report.app,
        report.scheduler,
        cluster.places,
        cluster.workers_per_place,
        effective_seed,
        sink.events.len()
    );
    println!(
        "makespan {:.3} ms  tasks {}  steals priv/shared/remote {}/{}/{}  messages {}",
        report.makespan_ns as f64 / 1e6,
        report.tasks_executed,
        report.steals.local_private,
        report.steals.local_shared,
        report.steals.remote,
        report.messages.total(),
    );
    println!();
    print!("{}", distws_trace::render_timeline(&series, 100));
    println!();
    print_percentiles(&report);

    let jsonl = sink.jsonl();
    let TeeSink { events, file } = sink;
    file.into_inner().expect("flush trace file");
    eprintln!("wrote {trace_path}");
    let write = |suffix: &str, body: &str| {
        let path = format!("{dir}/{slug}.{suffix}");
        let mut f = std::fs::File::create(&path).expect("create trace file");
        f.write_all(body.as_bytes()).expect("write trace file");
        if !body.ends_with('\n') {
            f.write_all(b"\n").expect("write trace file");
        }
        eprintln!("wrote {path}");
    };
    write(
        "chrome.json",
        &distws_trace::chrome_trace(&events, &cluster).render(),
    );
    write("series.json", &series.to_json().render_pretty());
    write("report.json", &distws_json::to_string_pretty(&report));

    // The fresh stream must conform to the Algorithm 1 steal-order
    // automaton under this policy's chunk/re-probe contract.
    let cfg = distws_analyze::ConformConfig::for_policy(policy_name)
        .unwrap_or_else(distws_analyze::ConformConfig::generic);
    let conform = distws_analyze::conform_str(&jsonl, &cfg);
    for v in &conform.violations {
        eprintln!("conformance: {v}");
    }
    if !conform.ok() {
        eprintln!(
            "repro trace: {} steal-order conformance violation(s)",
            conform.violations.len()
        );
        std::process::exit(1);
    }
    println!(
        "(steal-order conformance: {} attempts, {} successes, {} probes — all justified by Algorithm 1)",
        conform.attempts, conform.successes, conform.probes
    );
}

fn print_percentiles(report: &distws_core::RunReport) {
    let p = &report.percentiles;
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "histogram (ns)", "count", "p50", "p95", "p99", "max"
    );
    for (name, s) in [
        ("steal local private", &p.steal_local_private_ns),
        ("steal local shared", &p.steal_local_shared_ns),
        ("steal remote", &p.steal_remote_ns),
        ("task granularity", &p.task_granularity_ns),
        ("dormancy", &p.dormancy_ns),
    ] {
        println!(
            "{:<22} {:>9} {:>12} {:>12} {:>12} {:>12}",
            name, s.count, s.p50, s.p95, s.p99, s.max
        );
    }
}

fn write_json<T: distws_json::ToJson>(dir: &str, name: &str, rows: &T) {
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{name}.json");
    // write_json_file guarantees exactly one trailing newline, so a
    // regenerated file is byte-identical to the committed one.
    distws_json::write_json_file(std::path::Path::new(&path), rows).expect("write json");
    eprintln!("wrote {path}");
}

/// `repro bench` — run a suite, print the table, write the trajectory
/// file, and gate on events/sec regressions against the committed
/// baseline.
fn run_bench(
    suite: perf::BenchSuite,
    seed: u64,
    out: Option<&str>,
    baseline: Option<&str>,
    threshold_pct: f64,
    gate: bool,
) {
    let points = perf::matrix(suite);
    hr(&format!(
        "repro bench — suite {} ({} cells, seed {seed}, build {})",
        suite.name(),
        points.len(),
        build_hash(),
    ));
    let report = perf::run_suite(suite, seed, |i, p| {
        eprintln!(
            "[{}/{}] {} / {} on {}x{} ...",
            i + 1,
            points.len(),
            p.app,
            p.policy,
            p.cluster.places,
            p.cluster.workers_per_place
        );
    });
    print!("{}", perf::render_bench_table(&report));

    // Load the baseline BEFORE overwriting the default output path —
    // with no --baseline / --out, both are the committed BENCH file.
    let out_path = out.unwrap_or_else(|| suite.default_out()).to_string();
    let baseline_path = baseline.unwrap_or(&out_path).to_string();
    let baseline_report = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match perf::parse_report(&text) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => {
            eprintln!("no baseline at {baseline_path}; skipping the regression gate");
            None
        }
    };

    distws_json::write_json_file(std::path::Path::new(&out_path), &report)
        .expect("write bench json");
    eprintln!("wrote {out_path}");

    if let Some(base) = baseline_report {
        let regressions = perf::compare(&report, &base, threshold_pct);
        if regressions.is_empty() {
            println!(
                "\nregression gate: ok ({} cells within {threshold_pct}% of baseline events/sec)",
                report.cells.len()
            );
        } else {
            println!(
                "\nregression gate: {} cell(s) slower than baseline by more than {threshold_pct}%:",
                regressions.len()
            );
            for r in &regressions {
                println!(
                    "  {} / {} on {}x{}: {:.0} -> {:.0} events/sec (-{:.1}%)",
                    r.app,
                    r.policy,
                    r.places,
                    r.workers_per_place,
                    r.baseline_eps,
                    r.current_eps,
                    r.drop_pct
                );
            }
            if gate {
                std::process::exit(1);
            }
            println!("(--no-gate: not failing)");
        }
    }
}

/// `repro scale` — the cluster-scale engine sweep (see
/// `distws_bench::scale`). Runs every grid cell with `tasks <=
/// max_tasks`, writes/updates `BENCH_scale.json`, gates events/sec
/// against the committed baseline, and optionally enforces wall/RSS
/// budgets (the CI smoke runs a bounded cell under both).
#[allow(clippy::too_many_arguments)]
fn run_scale_sweep(
    seed: u64,
    out: Option<&str>,
    baseline: Option<&str>,
    threshold_pct: f64,
    gate: bool,
    max_tasks: u64,
    max_wall_s: Option<f64>,
    max_rss_mb: Option<u64>,
) {
    use bench::scale;

    let points: Vec<scale::ScalePoint> = scale::scale_matrix()
        .into_iter()
        .filter(|p| p.tasks <= max_tasks)
        .collect();
    if points.is_empty() {
        eprintln!("repro scale: --max-tasks {max_tasks} excludes every grid cell");
        std::process::exit(2);
    }
    hr(&format!(
        "repro scale — engine sweep ({} of {} cells, seed {seed}, build {})",
        points.len(),
        scale::scale_matrix().len(),
        build_hash(),
    ));
    let total = points.len();
    let report = scale::run_scale(seed, max_tasks, |i, p| {
        eprintln!(
            "[{}/{total}] ScaleFanout / DistWS on {}x{}, {} tasks ...",
            i + 1,
            p.places,
            p.workers_per_place,
            p.tasks
        );
    });
    print!("{}", scale::render_scale_table(&report));

    // Load the baseline BEFORE overwriting the default output path —
    // with no --baseline / --out, both are the committed BENCH file.
    let out_path = out.unwrap_or(scale::SCALE_DEFAULT_OUT).to_string();
    let baseline_path = baseline.unwrap_or(&out_path).to_string();
    let baseline_report = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match scale::parse_scale_report(&text) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => {
            eprintln!("no baseline at {baseline_path}; skipping the regression gate");
            None
        }
    };

    distws_json::write_json_file(std::path::Path::new(&out_path), &report)
        .expect("write scale json");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if let Some(budget) = max_wall_s {
        for c in &report.cells {
            if c.wall_ms > budget * 1e3 {
                println!(
                    "wall budget: {}x{} x {} tasks took {:.1}s (budget {budget}s)",
                    c.places,
                    c.workers_per_place,
                    c.tasks,
                    c.wall_ms / 1e3
                );
                failed = true;
            }
        }
    }
    if let Some(budget) = max_rss_mb {
        for c in &report.cells {
            if c.peak_rss_kb > budget * 1024 {
                println!(
                    "rss budget: {}x{} x {} tasks peaked at {} MiB (budget {budget} MiB)",
                    c.places,
                    c.workers_per_place,
                    c.tasks,
                    c.peak_rss_kb / 1024
                );
                failed = true;
            }
        }
    }

    if let Some(base) = baseline_report {
        let regressions = scale::compare_scale(&report, &base, threshold_pct);
        if regressions.is_empty() {
            println!(
                "\nregression gate: ok ({} cells within {threshold_pct}% of baseline events/sec)",
                report.cells.len()
            );
        } else {
            println!(
                "\nregression gate: {} cell(s) slower than baseline by more than {threshold_pct}%:",
                regressions.len()
            );
            for r in &regressions {
                println!(
                    "  {}x{} x {} tasks: {:.0} -> {:.0} events/sec (-{:.1}%)",
                    r.point.places,
                    r.point.workers_per_place,
                    r.point.tasks,
                    r.baseline_eps,
                    r.current_eps,
                    r.drop_pct
                );
            }
            if gate {
                failed = true;
            } else {
                println!("(--no-gate: not failing)");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// `repro scale --check FILE` — schema-validate a scale trajectory.
fn run_scale_check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    match bench::scale::parse_scale_report(&text) {
        Ok(r) => {
            println!(
                "{path}: ok (schema v{}, seed {}, {} cells)",
                r.schema_version,
                r.seed,
                r.cells.len()
            );
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro bench --check FILE` — schema-validate a trajectory file.
fn run_bench_check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    match perf::parse_report(&text) {
        Ok(r) => {
            println!(
                "{path}: ok (schema v{}, suite {}, seed {}, {} cells)",
                r.schema_version,
                r.suite,
                r.seed,
                r.cells.len()
            );
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn hr(title: &str) {
    println!("\n=== {title} ===");
}

fn print_fig3(rows: &[bench::Fig3Row]) {
    hr("Fig. 3 — steals-to-task ratio (DistWS, 16 places x 8 workers)");
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "app", "steals", "tasks", "ratio"
    );
    for r in rows {
        println!(
            "{:<14} {:>10} {:>12} {:>12.3e}",
            r.app, r.steals, r.tasks, r.ratio
        );
    }
}

fn print_fig4(rows: &[bench::Fig4Row]) {
    hr("Fig. 4 — sequential execution time (X10WS, 1 worker)");
    println!("{:<14} {:>12} {:>12}", "app", "seq (ms)", "tasks");
    for r in rows {
        println!("{:<14} {:>12.2} {:>12}", r.app, r.seq_ms, r.tasks);
    }
}

fn print_fig5(rows: &[bench::Fig5Point]) {
    hr("Fig. 5 — speedup over sequential vs workers");
    let mut apps: Vec<&str> = rows.iter().map(|r| r.app.as_str()).collect();
    apps.dedup();
    let mut workers: Vec<u32> = rows.iter().map(|r| r.workers).collect();
    workers.sort_unstable();
    workers.dedup();
    for app in apps {
        println!("\n  {app}");
        print!("    {:<10}", "workers");
        for w in &workers {
            print!(" {:>8}", w);
        }
        println!();
        for sched in ["X10WS", "DistWS"] {
            print!("    {:<10}", sched);
            for w in &workers {
                let p = rows
                    .iter()
                    .find(|r| r.app == app && r.workers == *w && r.scheduler == sched);
                match p {
                    Some(p) => print!(" {:>8.2}", p.speedup),
                    None => print!(" {:>8}", "-"),
                }
            }
            println!();
        }
    }
}

fn print_fig6(rows: &[bench::ThreeWayRow]) {
    hr("Fig. 6 — speedups at full scale: X10WS vs DistWS-NS vs DistWS");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "app", "X10WS", "DistWS-NS", "DistWS"
    );
    for app in dedup_apps(rows) {
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.app == app && r.scheduler == s)
                .map(|r| r.speedup)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<14} {:>10.2} {:>12.2} {:>10.2}",
            app,
            get("X10WS"),
            get("DistWS-NS"),
            get("DistWS")
        );
    }
}

fn print_table2(rows: &[bench::ThreeWayRow]) {
    hr("Table II — L1d miss rates (%) at full scale");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "app", "X10WS", "DistWS-NS", "DistWS"
    );
    for app in dedup_apps(rows) {
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.app == app && r.scheduler == s)
                .map(|r| r.l1d_miss_pct)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<14} {:>10.1} {:>12.1} {:>10.1}",
            app,
            get("X10WS"),
            get("DistWS-NS"),
            get("DistWS")
        );
    }
}

fn print_table3(rows: &[bench::ThreeWayRow]) {
    hr("Table III — messages transmitted across nodes at full scale");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "app", "X10WS", "DistWS-NS", "DistWS"
    );
    for app in dedup_apps(rows) {
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.app == app && r.scheduler == s)
                .map(|r| r.messages)
                .unwrap_or(0)
        };
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            app,
            get("X10WS"),
            get("DistWS-NS"),
            get("DistWS")
        );
    }
}

fn print_fig7(rows: &[bench::Fig7Row]) {
    hr("Fig. 7 — per-node CPU utilization (%)");
    for r in rows {
        let places: Vec<String> = r
            .per_place_pct
            .iter()
            .map(|u| format!("{u:>5.1}"))
            .collect();
        println!(
            "{:<14} {:<10} mean {:>5.1}  disparity {:>5.1}  [{}]",
            r.app,
            r.scheduler,
            r.mean_pct,
            r.disparity_pct,
            places.join(" ")
        );
    }
}

fn print_table1(rows: &[bench::Table1Row]) {
    hr("Table I — task granularities (ms)");
    println!("{:<14} {:>14} {:>12}", "app", "granularity", "tasks");
    for r in rows {
        println!("{:<14} {:>14.3} {:>12}", r.app, r.granularity_ms, r.tasks);
    }
}

fn print_granularity(rows: &[bench::GranularityRow]) {
    hr("§VIII.2 — fine-grained micro-apps (DistWS should NOT win here)");
    println!(
        "{:<16} {:<10} {:>16} {:>10}",
        "app", "scheduler", "granularity(ms)", "speedup"
    );
    for r in rows {
        println!(
            "{:<16} {:<10} {:>16.4} {:>10.2}",
            r.app, r.scheduler, r.granularity_ms, r.speedup
        );
    }
}

fn print_adaptive(rows: &[bench::AdaptiveRow]) {
    hr("Extension — annotation-free AdaptiveWS vs annotated DistWS");
    println!(
        "{:<14} {:<12} {:>10} {:>14}",
        "app", "scheduler", "speedup", "remote refs"
    );
    for r in rows {
        println!(
            "{:<14} {:<12} {:>10.2} {:>14}",
            r.app, r.scheduler, r.speedup, r.remote_refs
        );
    }
}

fn print_uts(rows: &[bench::UtsRow]) {
    hr("§X — UTS: random vs DistWS vs lifeline load balancing");
    println!(
        "{:<12} {:>10} {:>14}",
        "scheduler", "speedup", "remote steals"
    );
    for r in rows {
        println!(
            "{:<12} {:>10.2} {:>14}",
            r.scheduler, r.speedup, r.remote_steals
        );
    }
}

fn print_ablation(title: &str, rows: &[bench::AblationRow]) {
    hr(&format!("Ablation — {title}"));
    println!(
        "{:<24} {:<14} {:>14} {:>14}",
        "variant", "app", "makespan(ms)", "remote steals"
    );
    for r in rows {
        println!(
            "{:<24} {:<14} {:>14.2} {:>14}",
            r.variant, r.app, r.makespan_ms, r.remote_steals
        );
    }
}

fn dedup_apps(rows: &[bench::ThreeWayRow]) -> Vec<String> {
    let mut apps = Vec::new();
    for r in rows {
        if !apps.contains(&r.app) {
            apps.push(r.app.clone());
        }
    }
    apps
}
