//! The `repro bench` performance harness.
//!
//! Runs a fixed matrix of apps × policies × cluster sizes with engine
//! self-metrics enabled, records throughput (events/sec), simulation
//! rate (sim-ns per wall-ms), peak RSS and makespan per cell, and
//! reads/writes the schema-versioned `BENCH_quick.json` /
//! `BENCH_full.json` trajectory files at the repo root. A committed
//! baseline plus [`compare`] gives every later PR a regression gate.
//!
//! Two data classes per cell, deliberately separated in the JSON:
//!
//! * `tasks`, `makespan_ms`, `events` and `metrics.{counters,gauges}`
//!   are **deterministic** — pure functions of the seed; CI asserts
//!   two same-seed runs agree on them byte-for-byte.
//! * `wall_ms`, `events_per_sec`, `sim_ns_per_wall_ms`, `peak_rss_kb`
//!   and `metrics.phases_ns` are **wall-clock** — machine- and
//!   run-dependent; only the regression gate (with its tolerance
//!   threshold) looks at them.

use crate::{app_by_name, policy_by_name, Scale};
use distws_apps as apps;
use distws_core::{ClusterConfig, Workload};
use distws_json::{impl_to_json, Value};
use distws_metrics::{peak_rss_kb, Counter, EngineMetrics, MetricsSnapshot};
use distws_sim::{SimConfig, Simulation};
use distws_trace::NullSink;
use std::time::Instant;

/// Version of the `BENCH_*.json` layout. Bump on any breaking change
/// to cell fields; the loader rejects mismatches so a stale committed
/// baseline fails loudly instead of gating against garbage.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default regression-gate threshold: fail on a >10 % events/sec drop.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Which benchmark matrix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchSuite {
    /// 3 apps × 2 policies on a 4×2 cluster — seconds; the CI smoke.
    Quick,
    /// 4 apps × 3 policies on the paper cluster (16×8) plus a first
    /// above-paper size (32×16 = 512 workers) — minutes.
    Full,
}

impl BenchSuite {
    /// Wire name (`--suite` value and the `suite` JSON field).
    pub fn name(self) -> &'static str {
        match self {
            BenchSuite::Quick => "quick",
            BenchSuite::Full => "full",
        }
    }

    /// Parse a `--suite` value.
    pub fn by_name(name: &str) -> Option<BenchSuite> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(BenchSuite::Quick),
            "full" => Some(BenchSuite::Full),
            _ => None,
        }
    }

    /// The committed trajectory file of this suite.
    pub fn default_out(self) -> &'static str {
        match self {
            BenchSuite::Quick => "BENCH_quick.json",
            BenchSuite::Full => "BENCH_full.json",
        }
    }

    /// Timing repetitions per cell: each cell runs this many times and
    /// reports the fastest wall clock (counters are asserted identical
    /// across repetitions, so only the timing varies).
    pub fn iters(self) -> u32 {
        match self {
            BenchSuite::Quick => 3,
            BenchSuite::Full => 2,
        }
    }
}

/// One (app, policy, cluster, scale) point of the matrix.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Application name (resolvable by [`bench_app`]).
    pub app: &'static str,
    /// Policy name (resolvable by [`policy_by_name`]).
    pub policy: &'static str,
    /// Cluster shape.
    pub cluster: ClusterConfig,
    /// Input scale.
    pub scale: Scale,
}

/// The fixed matrix of a suite. Fixed means fixed: cells are only ever
/// appended (the committed baselines match on cell identity).
pub fn matrix(suite: BenchSuite) -> Vec<BenchPoint> {
    let mut points = Vec::new();
    match suite {
        BenchSuite::Quick => {
            // Default-scale inputs on a small cluster: tens of ms of
            // wall clock per cell, enough signal to gate on; the whole
            // suite still finishes in about a second.
            for app in ["Quicksort", "k-Means", "UTS"] {
                for policy in ["X10WS", "DistWS"] {
                    points.push(BenchPoint {
                        app,
                        policy,
                        cluster: ClusterConfig::new(4, 2),
                        scale: Scale::Default,
                    });
                }
            }
        }
        BenchSuite::Full => {
            // ClusterConfig::paper() is 16×8 = 128 workers; 32×16 is
            // the first above-paper point (512 workers).
            for cluster in [ClusterConfig::paper(), ClusterConfig::new(32, 16)] {
                for app in ["Quicksort", "k-Means", "UTS", "DMG"] {
                    for policy in ["X10WS", "DistWS", "LifelineWS"] {
                        points.push(BenchPoint {
                            app,
                            policy,
                            cluster: cluster.clone(),
                            scale: Scale::Default,
                        });
                    }
                }
            }
        }
    }
    points
}

/// Resolve a benchmark app name at a scale. Extends [`app_by_name`]
/// with UTS (which lives outside the paper's seven-app suite).
pub fn bench_app(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    if name.eq_ignore_ascii_case("uts") {
        return Some(match scale {
            Scale::Quick => Box::new(apps::Uts::quick()),
            _ => Box::new(apps::Uts::default()),
        });
    }
    app_by_name(name, scale)
}

/// One measured cell of `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Application display name.
    pub app: String,
    /// Policy display name.
    pub policy: String,
    /// Cluster places.
    pub places: u32,
    /// Workers per place.
    pub workers_per_place: u32,
    /// Tasks executed (deterministic).
    pub tasks: u64,
    /// Virtual makespan in milliseconds (deterministic).
    pub makespan_ms: f64,
    /// Engine events processed (deterministic).
    pub events: u64,
    /// Wall-clock run time in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Engine events per wall-clock second — the gated throughput.
    pub events_per_sec: f64,
    /// Simulated nanoseconds per wall-clock millisecond.
    pub sim_ns_per_wall_ms: f64,
    /// Process peak RSS in KiB after the cell (0 where unavailable;
    /// process-wide high-water mark, so later cells inherit earlier
    /// peaks).
    pub peak_rss_kb: u64,
    /// Full counter/gauge/phase snapshot.
    pub metrics: MetricsSnapshot,
}

impl BenchCell {
    /// Cell identity used to match against a baseline.
    pub fn key(&self) -> (String, String, u32, u32) {
        (
            self.app.clone(),
            self.policy.clone(),
            self.places,
            self.workers_per_place,
        )
    }
}

/// A whole `BENCH_*.json` document.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Layout version — see [`BENCH_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Suite wire name (`"quick"` / `"full"`).
    pub suite: String,
    /// The seed every cell ran with.
    pub seed: u64,
    /// One entry per matrix point, matrix order.
    pub cells: Vec<BenchCell>,
}

impl_to_json!(BenchCell {
    app,
    policy,
    places,
    workers_per_place,
    tasks,
    makespan_ms,
    events,
    wall_ms,
    events_per_sec,
    sim_ns_per_wall_ms,
    peak_rss_kb,
    metrics
});
impl_to_json!(BenchReport {
    schema_version,
    suite,
    seed,
    cells
});

/// Run one matrix point with metrics enabled, `iters` times, and keep
/// the fastest wall clock (counters and report are deterministic in
/// the seed — asserted — so repetitions only de-noise the timing).
pub fn run_cell(point: &BenchPoint, seed: u64, iters: u32) -> BenchCell {
    assert!(iters >= 1, "run_cell needs at least one iteration");
    let mut best: Option<(std::time::Duration, distws_core::RunReport, MetricsSnapshot)> = None;
    for _ in 0..iters {
        let app = bench_app(point.app, point.scale)
            .unwrap_or_else(|| panic!("unknown bench app '{}'", point.app));
        let policy = policy_by_name(point.policy)
            .unwrap_or_else(|| panic!("unknown bench policy '{}'", point.policy));
        let mut cfg = SimConfig::new(point.cluster.clone());
        cfg.seed = seed;
        let mut sim = Simulation::with_config(cfg, policy);
        let mut metrics = EngineMetrics::new();
        let start = Instant::now();
        let (report, _) = sim.run_app_metered(app.as_ref(), &mut NullSink, &mut metrics);
        let wall = start.elapsed();
        let snapshot = metrics.snapshot();
        match &best {
            Some((best_wall, _, best_snap)) => {
                assert_eq!(
                    best_snap.counters, snapshot.counters,
                    "nondeterministic counters across repetitions of {} / {}",
                    point.app, point.policy
                );
                if wall < *best_wall {
                    best = Some((wall, report, snapshot));
                }
            }
            None => best = Some((wall, report, snapshot)),
        }
    }
    let (wall, report, snapshot) = best.unwrap();
    let events = snapshot.counter(Counter::EventsProcessed);
    let wall_ms = wall.as_secs_f64() * 1e3;
    BenchCell {
        app: report.app,
        policy: report.scheduler,
        places: point.cluster.places,
        workers_per_place: point.cluster.workers_per_place,
        tasks: report.tasks_executed,
        makespan_ms: report.makespan_ns as f64 / 1e6,
        events,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        sim_ns_per_wall_ms: report.makespan_ns as f64 / wall_ms.max(1e-9),
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        metrics: snapshot,
    }
}

/// Run a whole suite. `progress` is called before each cell with the
/// point and its 0-based index (the CLI prints a status line; tests
/// pass a no-op).
pub fn run_suite(
    suite: BenchSuite,
    seed: u64,
    mut progress: impl FnMut(usize, &BenchPoint),
) -> BenchReport {
    let points = matrix(suite);
    let mut cells = Vec::with_capacity(points.len());
    for (i, point) in points.iter().enumerate() {
        progress(i, point);
        cells.push(run_cell(point, seed, suite.iters()));
    }
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        suite: suite.name().to_string(),
        seed,
        cells,
    }
}

/// Parse a `BENCH_*.json` document, validating its schema version.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema_version = v
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing schema_version")?;
    if schema_version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {schema_version} (this binary reads {BENCH_SCHEMA_VERSION})"
        ));
    }
    let suite = v
        .get("suite")
        .and_then(Value::as_str)
        .ok_or("missing suite")?
        .to_string();
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("missing seed")?;
    let mut cells = Vec::new();
    for (i, c) in v
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("missing cells")?
        .iter()
        .enumerate()
    {
        let str_field = |k: &str| {
            c.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("cell {i}: missing {k}"))
        };
        let u64_field = |k: &str| {
            c.get(k)
                .and_then(Value::as_u64)
                .ok_or(format!("cell {i}: missing {k}"))
        };
        let f64_field = |k: &str| {
            c.get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("cell {i}: missing {k}"))
        };
        cells.push(BenchCell {
            app: str_field("app")?,
            policy: str_field("policy")?,
            places: u64_field("places")? as u32,
            workers_per_place: u64_field("workers_per_place")? as u32,
            tasks: u64_field("tasks")?,
            makespan_ms: f64_field("makespan_ms")?,
            events: u64_field("events")?,
            wall_ms: f64_field("wall_ms")?,
            events_per_sec: f64_field("events_per_sec")?,
            sim_ns_per_wall_ms: f64_field("sim_ns_per_wall_ms")?,
            peak_rss_kb: u64_field("peak_rss_kb")?,
            metrics: c
                .get("metrics")
                .and_then(MetricsSnapshot::from_json)
                .ok_or(format!("cell {i}: missing metrics"))?,
        });
    }
    Ok(BenchReport {
        schema_version,
        suite,
        seed,
        cells,
    })
}

/// One gated throughput regression.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Application of the regressed cell.
    pub app: String,
    /// Policy of the regressed cell.
    pub policy: String,
    /// Cluster places of the regressed cell.
    pub places: u32,
    /// Workers per place of the regressed cell.
    pub workers_per_place: u32,
    /// Baseline events/sec.
    pub baseline_eps: f64,
    /// Current events/sec.
    pub current_eps: f64,
    /// Drop relative to baseline, in percent (positive = slower).
    pub drop_pct: f64,
}

/// Compare `current` against a committed `baseline`, cell by cell
/// (matched on app/policy/cluster identity — cells missing on either
/// side are skipped, so the matrix can grow). Returns every cell whose
/// events/sec dropped by more than `threshold_pct`.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in &current.cells {
        let Some(base) = baseline.cells.iter().find(|b| b.key() == cur.key()) else {
            continue;
        };
        if base.events_per_sec <= 0.0 {
            continue;
        }
        let drop_pct = (base.events_per_sec - cur.events_per_sec) / base.events_per_sec * 100.0;
        if drop_pct > threshold_pct {
            out.push(Regression {
                app: cur.app.clone(),
                policy: cur.policy.clone(),
                places: cur.places,
                workers_per_place: cur.workers_per_place,
                baseline_eps: base.events_per_sec,
                current_eps: cur.events_per_sec,
                drop_pct,
            });
        }
    }
    out
}

/// The human bench table (`repro bench` / `diag metrics` output).
pub fn render_bench_table(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<12} {:>8} {:>10} {:>13} {:>10} {:>9} {:>13} {:>14} {:>10}\n",
        "app",
        "policy",
        "cluster",
        "tasks",
        "makespan(ms)",
        "events",
        "wall(ms)",
        "events/sec",
        "sim-ns/wall-ms",
        "rss(MiB)"
    ));
    for c in &report.cells {
        out.push_str(&format!(
            "{:<12} {:<12} {:>8} {:>10} {:>13.3} {:>10} {:>9.1} {:>13.0} {:>14.0} {:>10.1}\n",
            c.app,
            c.policy,
            format!("{}x{}", c.places, c.workers_per_place),
            c.tasks,
            c.makespan_ms,
            c.events,
            c.wall_ms,
            c.events_per_sec,
            c.sim_ns_per_wall_ms,
            c.peak_rss_kb as f64 / 1024.0
        ));
    }
    out
}

/// The `diag metrics` view: one counter/gauge/phase table per cell.
pub fn render_metrics_view(report: &BenchReport) -> String {
    let mut out = String::new();
    for c in &report.cells {
        out.push_str(&format!(
            "## {} / {} on {}x{} (seed {})\n",
            c.app, c.policy, c.places, c.workers_per_place, report.seed
        ));
        out.push_str(&c.metrics.render_table());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point() -> BenchPoint {
        BenchPoint {
            app: "Quicksort",
            policy: "DistWS",
            cluster: ClusterConfig::new(2, 2),
            scale: Scale::Quick,
        }
    }

    #[test]
    fn cell_counters_are_deterministic_in_the_seed() {
        let a = run_cell(&quick_point(), 7, 1);
        let b = run_cell(&quick_point(), 7, 2); // iters=2 also self-asserts

        assert_eq!(a.metrics.counters, b.metrics.counters);
        assert_eq!(a.metrics.gauges, b.metrics.gauges);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.events, b.events);
        assert_eq!(a.makespan_ms, b.makespan_ms);
        // Sanity: the engine actually counted things.
        assert!(a.events > 0);
        assert!(a.metrics.counter(Counter::EventQueuePushes) >= a.events);
    }

    #[test]
    fn report_json_roundtrips_through_parse() {
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            suite: "quick".into(),
            seed: 42,
            cells: vec![run_cell(&quick_point(), 42, 1)],
        };
        let text = distws_json::to_string_pretty(&report);
        let back = parse_report(&text).unwrap();
        assert_eq!(back.seed, 42);
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].key(), report.cells[0].key());
        assert_eq!(back.cells[0].metrics, report.cells[0].metrics);
        assert_eq!(back.cells[0].events, report.cells[0].events);
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let text = r#"{"schema_version": 999, "suite": "quick", "seed": 1, "cells": []}"#;
        let err = parse_report(text).unwrap_err();
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn compare_flags_only_drops_beyond_threshold() {
        let mut base = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            suite: "quick".into(),
            seed: 1,
            cells: vec![run_cell(&quick_point(), 1, 1)],
        };
        base.cells[0].events_per_sec = 1_000_000.0;
        let mut cur = base.clone();
        cur.cells[0].events_per_sec = 950_000.0; // -5 %
        assert!(compare(&cur, &base, 10.0).is_empty());
        cur.cells[0].events_per_sec = 850_000.0; // -15 %
        let regs = compare(&cur, &base, 10.0);
        assert_eq!(regs.len(), 1);
        assert!((regs[0].drop_pct - 15.0).abs() < 1e-9);
        // Faster-than-baseline never gates.
        cur.cells[0].events_per_sec = 2_000_000.0;
        assert!(compare(&cur, &base, 10.0).is_empty());
    }

    #[test]
    fn quick_matrix_shape_is_fixed() {
        let m = matrix(BenchSuite::Quick);
        assert_eq!(m.len(), 6);
        assert!(m.iter().all(|p| p.cluster.places == 4));
        let full = matrix(BenchSuite::Full);
        assert_eq!(full.len(), 24);
        assert!(full.iter().any(|p| p.cluster.places == 32));
    }

    #[test]
    fn metrics_view_fixture_is_pinned() {
        let snapshot = MetricsSnapshot {
            counters: (1..=14).collect(),
            gauges: vec![21, 22, 23],
            phase_ns: vec![31, 32, 33],
        };
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            suite: "quick".into(),
            seed: 7,
            cells: vec![BenchCell {
                app: "Quicksort".into(),
                policy: "DistWS".into(),
                places: 4,
                workers_per_place: 2,
                tasks: 902,
                makespan_ms: 1.0,
                events: 1,
                wall_ms: 1.0,
                events_per_sec: 1.0,
                sim_ns_per_wall_ms: 1.0,
                peak_rss_kb: 1024,
                metrics: snapshot,
            }],
        };
        let expected = "\
## Quicksort / DistWS on 4x2 (seed 7)
counter                                     value
events_processed                                1
event_queue_pushes                              2
event_queue_pops                                3
tasks_allocated                                 4
deque_grows                                     5
steal_attempts.local_private                    6
steal_attempts.local_shared                     7
steal_attempts.remote                           8
steal_successes.local_private                   9
steal_successes.local_shared                   10
steal_successes.remote                         11
msgs_sent                                      12
msgs_dropped                                   13
msgs_retried                                   14
gauge                                       value
event_queue_max_depth                          21
private_deque_max_depth                        22
shared_deque_max_depth                         23
phase (wall ns)                             value
event_dispatch                                 31
task_execution                                 32
trace_emission                                 33

";
        assert_eq!(render_metrics_view(&report), expected);
    }

    #[test]
    fn bench_app_resolves_uts_and_suite_apps() {
        assert!(bench_app("UTS", Scale::Quick).is_some());
        assert!(bench_app("uts", Scale::Quick).is_some());
        assert!(bench_app("Quicksort", Scale::Quick).is_some());
        assert!(bench_app("no-such-app", Scale::Quick).is_none());
    }
}
