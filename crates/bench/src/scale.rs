//! `repro scale` — the cluster-scale engine sweep.
//!
//! Where `repro bench` tracks throughput on the paper's applications
//! at the paper's modest cluster shapes, this sweep measures the
//! *engine itself* at cluster scale: a synthetic locality-flexible
//! fanout workload driven across a places × workers × tasks grid that
//! tops out above a million tasks on a 128-place × 16-worker cluster
//! (2048 simulated workers). Each cell records events/sec, wall time
//! and peak RSS into `BENCH_scale.json` (schema v1), which CI gates
//! the same way as the bench trajectory.
//!
//! The workload is deliberately engine-bound: per-task virtual compute
//! is tiny and uniform, so events/sec here is dominated by the event
//! queue, the arenas, task mapping and the steal protocol — exactly
//! the paths the calendar-queue/arena rework optimizes.

use crate::policy_by_name;
use distws_core::{ClusterConfig, Locality, PlaceId, TaskScope, TaskSpec, Workload};
use distws_json::{impl_to_json, Value};
use distws_metrics::{peak_rss_kb, Counter, EngineMetrics};
use distws_sim::{SimConfig, Simulation};
use distws_trace::NullSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Layout version of `BENCH_scale.json`.
pub const SCALE_SCHEMA_VERSION: u64 = 1;

/// Default on-disk trajectory file.
pub const SCALE_DEFAULT_OUT: &str = "BENCH_scale.json";

// ---------------------------------------------------------------------------
// The synthetic workload
// ---------------------------------------------------------------------------

/// Deterministic K-ary fanout over heap-numbered task ids: task `i`
/// spawns tasks `i*K + 1 ..= i*K + K` (ids below the target count), so
/// the task DAG is a complete K-ary tree fixed by `(tasks, fanout)` —
/// no shared allocation, no rng. Every task is locality-flexible with
/// home `id % places`, mixing intra- and inter-place arrivals; each
/// folds a SplitMix64-style hash of its id into an atomic checksum the
/// post-run validation recomputes serially.
pub struct ScaleFanout {
    /// Total tasks (ids `0..tasks`).
    pub tasks: u64,
    /// Children per interior task.
    pub fanout: u64,
    /// Virtual compute per task (ns). Small, so the engine dominates.
    pub grain_ns: u64,
    /// Checksum salt.
    pub seed: u64,
    state: Mutex<Option<Arc<ScaleRun>>>,
}

struct ScaleRun {
    tasks: u64,
    fanout: u64,
    grain_ns: u64,
    seed: u64,
    places: u32,
    executed: AtomicU64,
    checksum: AtomicU64,
}

/// SplitMix64 finalizer: the per-task checksum contribution.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ScaleFanout {
    /// A fanout tree of `tasks` tasks, eight children per interior
    /// node (shallow and wide: ~7 levels at a million tasks).
    pub fn new(tasks: u64, seed: u64) -> Self {
        assert!(tasks > 0);
        ScaleFanout {
            tasks,
            fanout: 8,
            grain_ns: 10_000,
            seed,
            state: Mutex::new(None),
        }
    }
}

fn fanout_task(run: Arc<ScaleRun>, id: u64) -> TaskSpec {
    let home = PlaceId((id % run.places as u64) as u32);
    let grain = run.grain_ns;
    TaskSpec::new(
        home,
        Locality::Flexible,
        grain,
        "scale-fanout",
        move |s: &mut dyn TaskScope| {
            run.executed.fetch_add(1, Ordering::Relaxed);
            run.checksum
                .fetch_add(mix(run.seed ^ id), Ordering::Relaxed);
            let first = id * run.fanout + 1;
            let last = (first + run.fanout).min(run.tasks);
            for child in first..last.max(first) {
                s.spawn(fanout_task(Arc::clone(&run), child));
            }
        },
    )
}

impl Workload for ScaleFanout {
    fn name(&self) -> String {
        "ScaleFanout".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let run = Arc::new(ScaleRun {
            tasks: self.tasks,
            fanout: self.fanout,
            grain_ns: self.grain_ns,
            seed: self.seed,
            places: cfg.places,
            executed: AtomicU64::new(0),
            checksum: AtomicU64::new(0),
        });
        *self.state.lock().unwrap() = Some(Arc::clone(&run));
        vec![fanout_task(run, 0)]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let run = guard.as_ref().ok_or("scale fanout never ran")?;
        let executed = run.executed.load(Ordering::Relaxed);
        if executed != self.tasks {
            return Err(format!(
                "executed {executed} of {} fanout tasks",
                self.tasks
            ));
        }
        let mut want = 0u64;
        for id in 0..self.tasks {
            want = want.wrapping_add(mix(self.seed ^ id));
        }
        let got = run.checksum.load(Ordering::Relaxed);
        if got != want {
            return Err(format!("fanout checksum {got:#x} != {want:#x}"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// One grid point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalePoint {
    /// Cluster places.
    pub places: u32,
    /// Workers per place.
    pub workers_per_place: u32,
    /// Fanout task count.
    pub tasks: u64,
}

/// The fixed sweep grid, small to large. Fixed means fixed: cells are
/// only ever appended (the committed baseline matches on identity).
pub fn scale_matrix() -> Vec<ScalePoint> {
    vec![
        ScalePoint {
            places: 8,
            workers_per_place: 8,
            tasks: 100_000,
        },
        ScalePoint {
            places: 32,
            workers_per_place: 16,
            tasks: 100_000,
        },
        ScalePoint {
            places: 64,
            workers_per_place: 16,
            tasks: 250_000,
        },
        ScalePoint {
            places: 128,
            workers_per_place: 16,
            tasks: 1_000_000,
        },
    ]
}

/// One measured cell of `BENCH_scale.json`.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Cluster places.
    pub places: u32,
    /// Workers per place.
    pub workers_per_place: u32,
    /// Tasks executed (deterministic; equals the grid target).
    pub tasks: u64,
    /// Engine events processed (deterministic).
    pub events: u64,
    /// Virtual makespan in milliseconds (deterministic).
    pub makespan_ms: f64,
    /// Wall-clock run time in milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Engine events per wall-clock second — the gated throughput.
    pub events_per_sec: f64,
    /// Process peak RSS in KiB after the cell (0 where unavailable;
    /// process-wide high-water mark, so later cells inherit earlier
    /// peaks).
    pub peak_rss_kb: u64,
}

impl ScaleCell {
    /// Cell identity used to match against a baseline.
    pub fn key(&self) -> (u32, u32, u64) {
        (self.places, self.workers_per_place, self.tasks)
    }
}

/// A whole `BENCH_scale.json` document.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Layout version — see [`SCALE_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// The seed every cell ran with.
    pub seed: u64,
    /// One entry per grid point, grid order (filtered runs keep order).
    pub cells: Vec<ScaleCell>,
}

impl_to_json!(ScaleCell {
    places,
    workers_per_place,
    tasks,
    events,
    makespan_ms,
    wall_ms,
    events_per_sec,
    peak_rss_kb
});
impl_to_json!(ScaleReport {
    schema_version,
    seed,
    cells
});

/// Run one grid point under DistWS and validate the fanout.
pub fn run_scale_cell(point: &ScalePoint, seed: u64) -> ScaleCell {
    let app = ScaleFanout::new(point.tasks, seed);
    let policy = policy_by_name("DistWS").expect("DistWS policy");
    let mut cfg = SimConfig::new(ClusterConfig::new(point.places, point.workers_per_place));
    cfg.seed = seed;
    let mut sim = Simulation::with_config(cfg, policy);
    let mut metrics = EngineMetrics::new();
    let start = Instant::now();
    let (report, _) = sim.run_app_metered(&app, &mut NullSink, &mut metrics);
    let wall = start.elapsed();
    app.validate()
        .unwrap_or_else(|e| panic!("scale cell {point:?}: {e}"));
    assert_eq!(
        report.tasks_executed, point.tasks,
        "scale cell {point:?} task count"
    );
    let snapshot = metrics.snapshot();
    let events = snapshot.counter(Counter::EventsProcessed);
    ScaleCell {
        places: point.places,
        workers_per_place: point.workers_per_place,
        tasks: report.tasks_executed,
        events,
        makespan_ms: report.makespan_ns as f64 / 1e6,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
    }
}

/// Run the sweep over every grid point with `tasks <= max_tasks`
/// (`u64::MAX` = the full grid). `progress` is called before each cell.
pub fn run_scale(
    seed: u64,
    max_tasks: u64,
    mut progress: impl FnMut(usize, &ScalePoint),
) -> ScaleReport {
    let points: Vec<ScalePoint> = scale_matrix()
        .into_iter()
        .filter(|p| p.tasks <= max_tasks)
        .collect();
    let mut cells = Vec::with_capacity(points.len());
    for (i, point) in points.iter().enumerate() {
        progress(i, point);
        cells.push(run_scale_cell(point, seed));
    }
    ScaleReport {
        schema_version: SCALE_SCHEMA_VERSION,
        seed,
        cells,
    }
}

/// Parse a `BENCH_scale.json` document, validating its schema version.
pub fn parse_scale_report(text: &str) -> Result<ScaleReport, String> {
    let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema_version = v
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing schema_version")?;
    if schema_version != SCALE_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {schema_version} (this binary reads {SCALE_SCHEMA_VERSION})"
        ));
    }
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("missing seed")?;
    let mut cells = Vec::new();
    for (i, c) in v
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("missing cells")?
        .iter()
        .enumerate()
    {
        let u64_field = |k: &str| {
            c.get(k)
                .and_then(Value::as_u64)
                .ok_or(format!("cell {i}: missing {k}"))
        };
        let f64_field = |k: &str| {
            c.get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("cell {i}: missing {k}"))
        };
        cells.push(ScaleCell {
            places: u64_field("places")? as u32,
            workers_per_place: u64_field("workers_per_place")? as u32,
            tasks: u64_field("tasks")?,
            events: u64_field("events")?,
            makespan_ms: f64_field("makespan_ms")?,
            wall_ms: f64_field("wall_ms")?,
            events_per_sec: f64_field("events_per_sec")?,
            peak_rss_kb: u64_field("peak_rss_kb")?,
        });
    }
    Ok(ScaleReport {
        schema_version,
        seed,
        cells,
    })
}

/// A cell that fell behind the baseline.
#[derive(Debug, Clone)]
pub struct ScaleRegression {
    /// Identity of the regressed cell.
    pub point: ScalePoint,
    /// Baseline events/sec.
    pub baseline_eps: f64,
    /// Current events/sec.
    pub current_eps: f64,
    /// Drop relative to baseline, in percent (positive = slower).
    pub drop_pct: f64,
}

/// Compare `current` against a committed `baseline`, cell by cell
/// (matched on places/workers/tasks — cells missing on either side are
/// skipped, so partial CI runs and a growing grid both work). Returns
/// every cell whose events/sec dropped by more than `threshold_pct`.
pub fn compare_scale(
    current: &ScaleReport,
    baseline: &ScaleReport,
    threshold_pct: f64,
) -> Vec<ScaleRegression> {
    let mut out = Vec::new();
    for cur in &current.cells {
        let Some(base) = baseline.cells.iter().find(|b| b.key() == cur.key()) else {
            continue;
        };
        if base.events_per_sec <= 0.0 {
            continue;
        }
        let drop_pct = (base.events_per_sec - cur.events_per_sec) / base.events_per_sec * 100.0;
        if drop_pct > threshold_pct {
            out.push(ScaleRegression {
                point: ScalePoint {
                    places: cur.places,
                    workers_per_place: cur.workers_per_place,
                    tasks: cur.tasks,
                },
                baseline_eps: base.events_per_sec,
                current_eps: cur.events_per_sec,
                drop_pct,
            });
        }
    }
    out
}

/// The human table for `repro scale`.
pub fn render_scale_table(report: &ScaleReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>13} {:>10} {:>13} {:>10}\n",
        "cluster", "tasks", "events", "makespan(ms)", "wall(ms)", "events/sec", "rss(MiB)"
    ));
    for c in &report.cells {
        out.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>13.3} {:>10.1} {:>13.0} {:>10.1}\n",
            format!("{}x{}", c.places, c.workers_per_place),
            c.tasks,
            c.events,
            c.makespan_ms,
            c.wall_ms,
            c.events_per_sec,
            c.peak_rss_kb as f64 / 1024.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_tree_covers_every_id_exactly_once() {
        // 1000 tasks, fanout 8: ids 0..1000 each spawned exactly once.
        let app = ScaleFanout::new(1_000, 7);
        let policy = policy_by_name("DistWS").unwrap();
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.seed = 1;
        let mut sim = Simulation::with_config(cfg, policy);
        let report = sim.run_app(&app);
        assert_eq!(report.tasks_executed, 1_000);
        app.validate().unwrap();
    }

    #[test]
    fn fanout_is_deterministic_in_the_seed() {
        let run = |seed| {
            let app = ScaleFanout::new(500, 3);
            let policy = policy_by_name("DistWS").unwrap();
            let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
            cfg.seed = seed;
            let r = Simulation::with_config(cfg, policy).run_app(&app);
            app.validate().unwrap();
            (r.makespan_ns, r.steals, r.messages.total())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, 0);
    }

    #[test]
    fn validate_catches_a_wrong_checksum() {
        let app = ScaleFanout::new(100, 1);
        let policy = policy_by_name("DistWS").unwrap();
        let mut cfg = SimConfig::new(ClusterConfig::new(2, 2));
        cfg.seed = 1;
        Simulation::with_config(cfg, policy).run_app(&app);
        app.validate().unwrap();
        // Corrupt the checksum: validation must fail loudly.
        app.state
            .lock()
            .unwrap()
            .as_ref()
            .unwrap()
            .checksum
            .fetch_add(1, Ordering::Relaxed);
        assert!(app.validate().is_err());
    }

    #[test]
    fn scale_report_roundtrips_through_json() {
        let report = ScaleReport {
            schema_version: SCALE_SCHEMA_VERSION,
            seed: 5,
            cells: vec![run_scale_cell(
                &ScalePoint {
                    places: 2,
                    workers_per_place: 2,
                    tasks: 200,
                },
                5,
            )],
        };
        let text = distws_json::to_string_pretty(&report);
        let back = parse_scale_report(&text).unwrap();
        assert_eq!(back.seed, 5);
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].key(), report.cells[0].key());
        assert_eq!(back.cells[0].events, report.cells[0].events);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let cell = run_scale_cell(
            &ScalePoint {
                places: 2,
                workers_per_place: 2,
                tasks: 100,
            },
            1,
        );
        let base = ScaleReport {
            schema_version: SCALE_SCHEMA_VERSION,
            seed: 1,
            cells: vec![cell.clone()],
        };
        let mut slow = base.clone();
        slow.cells[0].events_per_sec = cell.events_per_sec / 10.0;
        assert!(compare_scale(&base, &base, 10.0).is_empty());
        let r = compare_scale(&slow, &base, 10.0);
        assert_eq!(r.len(), 1);
        assert!(r[0].drop_pct > 80.0);
        // Unknown cells on either side are skipped, not flagged.
        let other = ScaleReport {
            schema_version: SCALE_SCHEMA_VERSION,
            seed: 1,
            cells: vec![],
        };
        assert!(compare_scale(&slow, &other, 10.0).is_empty());
    }
}
