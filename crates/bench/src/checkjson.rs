//! Machine-readable output for `repro check protocol --json` and
//! `repro check liveness --json`: the per-scenario stats table
//! (states / transitions / ample / proviso / wall) plus liveness
//! verdicts, rendered with `distws-json` so downstream tooling (CI
//! trend scripts, the bench harness) can consume checker runs without
//! scraping the human table.
//!
//! Schema (stable; `crates/bench/tests/check_json.rs` pins it):
//!
//! ```json
//! {
//!   "kind": "protocol" | "liveness",
//!   "mode": "reduced" | "full",
//!   "scenarios": [
//!     {
//!       "scenario": "sensitive_pinning",
//!       "era": "sim",
//!       "states": 123, "transitions": 456, "peak_queue": 7,
//!       "ample_states": 89, "proviso_fallbacks": 0,
//!       "truncated": false, "wall_ms": 3,
//!       "violations": ["..."],
//!       "liveness": [            // liveness runs only
//!         {
//!           "property": "eventual-execution",
//!           "holds": true, "cyclic": false, "truncated": false,
//!           "graph_states": 123, "graph_transitions": 456,
//!           "product_states": 0,
//!           "lasso": { "stem": ["..."], "cycle": ["..."] }  // on violation
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```

use distws_analyze::liveness::LivenessReport;
use distws_analyze::{ExploreStats, Outcome};
use distws_json::Value;

/// One liveness verdict as a JSON object (`lasso` present only on a
/// violation).
pub fn liveness_value(r: &LivenessReport) -> Value {
    let mut v = Value::object();
    v.set("property", r.property.name())
        .set("holds", r.holds)
        .set("cyclic", r.cyclic)
        .set("truncated", r.truncated)
        .set("graph_states", r.graph_states)
        .set("graph_transitions", r.graph_transitions)
        .set("product_states", r.product_states);
    if let Some(lasso) = &r.lasso {
        let mut l = Value::object();
        l.set("stem", &lasso.stem).set("cycle", &lasso.cycle);
        v.set("lasso", l);
    }
    v
}

/// One `repro check protocol` table row.
pub fn protocol_row(
    scenario: &str,
    era: &str,
    out: &Outcome,
    stats: &ExploreStats,
    wall_ms: u64,
) -> Value {
    let mut v = Value::object();
    v.set("scenario", scenario)
        .set("era", era)
        .set("states", out.states)
        .set("transitions", stats.transitions)
        .set("peak_queue", stats.peak_queue)
        .set("ample_states", stats.ample_states)
        .set("proviso_fallbacks", stats.proviso_fallbacks)
        .set("truncated", stats.truncated)
        .set("wall_ms", wall_ms)
        .set("violations", &out.violations);
    v
}

/// One `repro check liveness` table row: the scenario's three
/// property verdicts plus the phase-1 graph size.
pub fn liveness_row(scenario: &str, era: &str, reports: &[LivenessReport], wall_ms: u64) -> Value {
    let mut v = Value::object();
    v.set("scenario", scenario).set("era", era);
    if let Some(r) = reports.first() {
        v.set("states", r.graph_states)
            .set("transitions", r.graph_transitions)
            .set("truncated", reports.iter().any(|r| r.truncated));
    }
    v.set("wall_ms", wall_ms).set(
        "liveness",
        reports.iter().map(liveness_value).collect::<Vec<_>>(),
    );
    v
}

/// The top-level report envelope.
pub fn check_report(kind: &str, mode: &str, rows: Vec<Value>) -> Value {
    let mut v = Value::object();
    v.set("kind", kind).set("mode", mode).set("scenarios", rows);
    v
}
