//! Bakes the git commit into the `repro` binary so a stale build is
//! visible at a glance (`repro bench` / `repro scale` print it): CI
//! once burned hours gating against a binary built from an older
//! checkout.

use std::process::Command;

fn main() {
    // Re-run when HEAD moves (commit, checkout, rebase).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/refs");
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    let suffix = if dirty { "-dirty" } else { "" };
    println!("cargo:rustc-env=DISTWS_BUILD_HASH={hash}{suffix}");
}
