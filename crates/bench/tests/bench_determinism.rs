//! PR invariant: the engine hot-path rework (calendar event queue,
//! task/latch arenas, worker bitsets, cached victim lists, buffered
//! sinks) must not move a single counter.
//!
//! Re-runs every quick-suite matrix cell in-process and asserts the
//! deterministic fields — tasks, virtual makespan, event count, all
//! metrics counters and gauges — are bit-identical to the committed
//! `BENCH_quick.json` baseline. Wall-clock fields (`wall_ms`,
//! `events_per_sec`, `phase_ns`, `peak_rss_kb`) are machine-dependent
//! and excluded.

use distws_bench::perf::{matrix, parse_report, run_cell, BenchSuite};

#[test]
fn quick_suite_counters_match_committed_baseline() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_quick.json"
    ))
    .expect("committed BENCH_quick.json");
    let baseline = parse_report(&text).expect("parse BENCH_quick.json");

    let points = matrix(BenchSuite::Quick);
    assert_eq!(
        points.len(),
        baseline.cells.len(),
        "matrix and baseline disagree on cell count"
    );
    for (point, want) in points.iter().zip(&baseline.cells) {
        let got = run_cell(point, baseline.seed, 1);
        assert_eq!(got.key(), want.key(), "cell identity drifted");
        let cell = format!("{} / {}", got.app, got.policy);
        assert_eq!(got.tasks, want.tasks, "{cell}: tasks");
        assert_eq!(got.events, want.events, "{cell}: events");
        assert_eq!(
            got.makespan_ms.to_bits(),
            want.makespan_ms.to_bits(),
            "{cell}: makespan {} != {}",
            got.makespan_ms,
            want.makespan_ms
        );
        assert_eq!(
            got.metrics.counters, want.metrics.counters,
            "{cell}: counters"
        );
        assert_eq!(got.metrics.gauges, want.metrics.gauges, "{cell}: gauges");
    }
}
