//! PR invariant: metering must not perturb results.
//!
//! A run with [`distws_metrics::EngineMetrics`] attached must produce
//! a `RunReport` byte-identical (JSON serialization) to the same run
//! with the zero-cost [`distws_metrics::NullMetrics`] default — the
//! sink only observes, never steers. Companion to the PR 1 invariant
//! that tracing does not perturb results.

use distws_bench::{policy_by_name, suite, Scale};
use distws_core::ClusterConfig;
use distws_metrics::EngineMetrics;
use distws_sim::{SimConfig, Simulation};
use distws_trace::NullSink;

const POLICIES: &[&str] = &[
    "x10ws",
    "distws",
    "distws-ns",
    "randomws",
    "lifelinews",
    "adaptivews",
];

fn config() -> SimConfig {
    let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
    cfg.seed = 0xD15C0;
    cfg
}

#[test]
fn metered_reports_are_byte_identical_to_unmetered() {
    for policy_name in POLICIES {
        for (plain_app, metered_app) in suite(Scale::Quick).into_iter().zip(suite(Scale::Quick)) {
            let plain = Simulation::with_config(config(), policy_by_name(policy_name).unwrap())
                .run_app(plain_app.as_ref());
            let mut metrics = EngineMetrics::new();
            let (metered, _) =
                Simulation::with_config(config(), policy_by_name(policy_name).unwrap())
                    .run_app_metered(metered_app.as_ref(), &mut NullSink, &mut metrics);
            assert_eq!(
                distws_json::to_string_pretty(&plain),
                distws_json::to_string_pretty(&metered),
                "metering perturbed the report of {} under {policy_name}",
                plain.app
            );
            // And the sink actually recorded the run.
            assert!(
                metrics.counter(distws_metrics::Counter::EventsProcessed) > 0,
                "no events counted for {} under {policy_name}",
                metered.app
            );
        }
    }
}

#[test]
fn metered_counters_are_deterministic() {
    for policy_name in POLICIES {
        for (app_a, app_b) in suite(Scale::Quick).into_iter().zip(suite(Scale::Quick)) {
            let run = |app: &dyn distws_core::Workload| {
                let mut metrics = EngineMetrics::new();
                Simulation::with_config(config(), policy_by_name(policy_name).unwrap())
                    .run_app_metered(app, &mut NullSink, &mut metrics);
                metrics.snapshot()
            };
            let (a, b) = (run(app_a.as_ref()), run(app_b.as_ref()));
            assert_eq!(
                a.counters,
                b.counters,
                "nondeterministic counters for {} under {policy_name}",
                app_a.name()
            );
            assert_eq!(
                a.gauges,
                b.gauges,
                "nondeterministic gauges for {} under {policy_name}",
                app_a.name()
            );
        }
    }
}
