//! Schema fixture for `repro check ... --json`: the machine-readable
//! checker output is a documented surface (CI trend tooling parses
//! it), so its shape is pinned here against real checker runs.

use distws_analyze::liveness::check_liveness;
use distws_analyze::{explore_protocol_mode, scenario_by_name, Mode, ProtocolMutant};
use distws_bench::checkjson;
use distws_json::Value;

#[test]
fn protocol_report_schema() {
    let sc = scenario_by_name("sensitive_pinning").unwrap();
    let (out, stats) = explore_protocol_mode(&sc, None, Mode::Reduced, None);
    let row = checkjson::protocol_row(sc.name, "sim", &out, &stats, 7);
    let report = checkjson::check_report("protocol", "reduced", vec![row]);
    // Round-trip through the renderer: downstream consumers see text.
    let v = Value::parse(&report.render_pretty()).expect("valid JSON");
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("protocol"));
    assert_eq!(v.get("mode").and_then(Value::as_str), Some("reduced"));
    let rows = v
        .get("scenarios")
        .and_then(Value::as_array)
        .expect("scenarios array");
    assert_eq!(rows.len(), 1);
    let r = &rows[0];
    assert_eq!(
        r.get("scenario").and_then(Value::as_str),
        Some("sensitive_pinning")
    );
    assert_eq!(r.get("era").and_then(Value::as_str), Some("sim"));
    for key in [
        "states",
        "transitions",
        "peak_queue",
        "ample_states",
        "proviso_fallbacks",
        "wall_ms",
    ] {
        assert!(
            r.get(key).and_then(Value::as_u64).is_some(),
            "missing numeric field {key}"
        );
    }
    assert!(r.get("truncated").is_some());
    assert_eq!(
        r.get("violations")
            .and_then(Value::as_array)
            .map(|a| a.len()),
        Some(0),
        "clean scenario must report an empty violations array"
    );
    assert_eq!(r.get("wall_ms").and_then(Value::as_u64), Some(7));
}

#[test]
fn liveness_report_schema_clean_scenario() {
    let sc = scenario_by_name("sensitive_pinning").unwrap();
    let reports = check_liveness(&sc, None, Mode::Reduced, None);
    let row = checkjson::liveness_row(sc.name, "sim", &reports, 3);
    let report = checkjson::check_report("liveness", "reduced", vec![row]);
    let v = Value::parse(&report.render_pretty()).expect("valid JSON");
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("liveness"));
    let rows = v.get("scenarios").and_then(Value::as_array).unwrap();
    let verdicts = rows[0]
        .get("liveness")
        .and_then(Value::as_array)
        .expect("liveness verdict array");
    assert_eq!(verdicts.len(), 3, "one verdict per built-in property");
    let names: Vec<&str> = verdicts
        .iter()
        .map(|p| p.get("property").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        ["eventual-execution", "lifeline-wakeup", "steal-progress"]
    );
    for p in verdicts {
        assert_eq!(p.get("holds").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("cyclic").and_then(Value::as_bool), Some(false));
        assert!(p.get("graph_states").and_then(Value::as_u64).unwrap() > 0);
        assert!(
            p.get("lasso").is_none(),
            "a holding property must not carry a lasso"
        );
    }
}

#[test]
fn liveness_report_schema_violation_carries_lasso() {
    let m = ProtocolMutant::ReprobeNoBackoff;
    let sc = scenario_by_name(m.catch_scenario()).unwrap();
    let reports = check_liveness(&sc, Some(m), Mode::Full, None);
    let row = checkjson::liveness_row(sc.name, "sim", &reports, 0);
    let v = Value::parse(&row.render_pretty()).expect("valid JSON");
    let verdicts = v.get("liveness").and_then(Value::as_array).unwrap();
    let progress = verdicts
        .iter()
        .find(|p| p.get("property").and_then(Value::as_str) == Some("steal-progress"))
        .unwrap();
    assert_eq!(progress.get("holds").and_then(Value::as_bool), Some(false));
    let lasso = progress.get("lasso").expect("violation carries a lasso");
    let cycle = lasso.get("cycle").and_then(Value::as_array).unwrap();
    assert!(!cycle.is_empty());
    assert!(cycle.iter().all(|s| s.as_str().is_some()));
    assert!(lasso.get("stem").and_then(Value::as_array).is_some());
}
