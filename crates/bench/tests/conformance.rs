//! End-to-end steal-order conformance: fresh traces from every policy
//! the paper evaluates must replay cleanly through the Algorithm 1
//! automaton (`distws_analyze::conform`), fault-free and under chaos —
//! and a doctored out-of-order trace must be rejected.

use distws_analyze::{conform_str, ConformConfig};
use distws_bench as bench;
use distws_bench::Scale;
use distws_netsim::FaultPlan;
use distws_sim::{FaultConfig, SimConfig, Simulation};

const POLICIES: [&str; 6] = [
    "X10WS",
    "DistWS",
    "DistWS-NS",
    "RandomWS",
    "LifelineWS",
    "AdaptiveWS",
];

fn traced_run(policy_name: &str, faults: Option<FaultConfig>) -> String {
    let app = bench::app_by_name("quicksort", Scale::Quick).expect("app");
    let policy = bench::policy_by_name(policy_name).expect("policy");
    let mut cfg = SimConfig::new(bench::eval_cluster(Scale::Quick));
    if let Some(f) = faults {
        cfg.faults = f;
    }
    let mut sink = distws_trace::JsonlSink::new(Vec::new());
    let _ = Simulation::with_config(cfg, policy).run_app_traced(app.as_ref(), &mut sink);
    String::from_utf8(sink.into_inner()).expect("trace is UTF-8")
}

#[test]
fn fresh_traces_conform_for_all_six_policies() {
    for name in POLICIES {
        let jsonl = traced_run(name, None);
        let cfg = ConformConfig::for_policy(name).expect("policy table");
        let report = conform_str(&jsonl, &cfg);
        assert!(
            report.ok(),
            "{name}: {:?}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
        assert!(report.full_vocabulary, "{name}: probe vocabulary missing");
        assert!(report.attempts > 0, "{name}: no steal attempts traced");
    }
}

#[test]
fn faulty_traces_still_conform_for_all_six_policies() {
    for name in POLICIES {
        let faults = FaultConfig {
            net: FaultPlan::uniform_loss(0.03),
            kills: vec![(distws_core::PlaceId(3), 120_000)],
            seed: 0xC0FF,
            ..Default::default()
        };
        let jsonl = traced_run(name, Some(faults));
        let cfg = ConformConfig::for_policy(name).expect("policy table");
        let report = conform_str(&jsonl, &cfg);
        assert!(
            report.ok(),
            "{name} under faults: {:?}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
    }
}

/// Moving one remote `steal_success` ahead of the probes and attempts
/// that justified it must be flagged — the acceptance test for the
/// conformance pass's discriminative power.
#[test]
fn doctored_out_of_order_steal_is_rejected() {
    let jsonl = traced_run("DistWS", None);
    let lines: Vec<&str> = jsonl.lines().collect();
    let idx = lines
        .iter()
        .position(|l| l.contains("\"ev\":\"steal_success\"") && l.contains("\"tier\":\"remote\""))
        .expect("quick quicksort run always steals remotely under DistWS");
    let mut doctored: Vec<&str> = Vec::with_capacity(lines.len());
    doctored.push(lines[idx]);
    doctored.extend(lines[..idx].iter().copied());
    doctored.extend(lines[idx + 1..].iter().copied());
    let cfg = ConformConfig::for_policy("DistWS").expect("policy table");
    let report = conform_str(&doctored.join("\n"), &cfg);
    assert!(
        !report.ok(),
        "out-of-order remote steal slipped through the automaton"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.to_string().contains("not immediately preceded")),
        "{:?}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
}
