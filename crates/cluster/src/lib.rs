//! # distws-cluster
//!
//! Real multi-process places: each place of the cluster runs as its
//! own OS process, speaking a small length-prefixed binary protocol
//! over Unix or TCP sockets ([`wire`]), with crash-tolerant stealing —
//! heartbeat failure detection, lease-based reclaim of in-flight
//! migrations, reconnect with jittered exponential backoff, and
//! graceful degradation when a place never returns.

pub mod app;
pub mod clock;
pub mod hlc;
pub mod launch;
pub mod merge;
pub mod place;
pub mod wire;

pub use app::{app_by_name, ClusterApp, ClusterScope, RootSpec};
pub use clock::{cluster_retry_defaults, reconnect_defaults, Reconnector, WallRetry};
pub use hlc::Hlc;
pub use launch::{parse_kill_spec, run_cluster, KillSpec, LaunchConfig, LaunchOutcome};
pub use merge::{merge_traces, MergeStats, TraceFile};
pub use place::{
    policy_by_name, run_place, PlaceConfig, Transport, EXIT_BAD_RESULT, EXIT_DEADLINE,
};
pub use wire::{Frame, WireTask, TASK_RECOVERED, WIRE_VERSION};
