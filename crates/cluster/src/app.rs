//! Cluster applications: workloads whose tasks travel between
//! processes as [`WireTask`] payloads.
//!
//! Unlike the in-process [`distws_core::Workload`] trait (closures
//! over shared memory), a cluster task must be *serializable* and
//! *re-executable*: its payload carries everything needed to run it at
//! any place, and running it twice produces the same children and the
//! same contribution — which is what makes crash recovery sound (a
//! re-homed task re-executes from its payload) and checkable (the
//! merged trace proves effective exactly-once completion).
//!
//! Results are `Vec<u64>` contributions folded element-wise with
//! wrapping addition up the task tree; the coordinator validates the
//! root fold against a sequentially computed expectation.

use crate::wire::WireTask;
use distws_core::{Locality, SplitMix64};

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer used
/// for deterministic task ids, routing, and payload hashing.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Spawn interface handed to [`ClusterApp::execute`]: the place
/// runtime assigns ids, routes children to their home place, and
/// wires up completion accounting.
pub trait ClusterScope {
    /// Spawn a child of the currently executing task. `locality`
    /// governs migration (`Sensitive` children execute at their home
    /// place); `est` feeds chunking heuristics.
    fn spawn(&mut self, locality: Locality, kind: u16, est: u64, payload: Vec<u64>);
}

/// A workload runnable across place processes.
pub trait ClusterApp: Send + Sync {
    /// Application name (reports, trace file names).
    fn name(&self) -> &'static str;

    /// Root tasks for `round`, given the folded result of the
    /// previous round (`None` for round 0). Return `None` to end the
    /// run; the final result is the last round's fold.
    fn roots(&self, round: u32, prev: Option<&[u64]>) -> Option<Vec<RootSpec>>;

    /// Execute one task: optionally spawn children, return this
    /// task's own contribution. Must be deterministic in `task`.
    fn execute(&self, task: &WireTask, scope: &mut dyn ClusterScope) -> Vec<u64>;

    /// Check the final folded result.
    fn validate(&self, result: &[u64]) -> Result<(), String>;
}

/// A root task before the coordinator assigns ids and homes.
pub struct RootSpec {
    /// Locality class.
    pub locality: Locality,
    /// Application task-kind discriminant.
    pub kind: u16,
    /// Estimated cost.
    pub est: u64,
    /// Task payload.
    pub payload: Vec<u64>,
}

/// Locality ⇄ wire byte.
pub fn locality_to_wire(l: Locality) -> u8 {
    match l {
        Locality::Sensitive => 0,
        Locality::Flexible => 1,
    }
}

/// Inverse of [`locality_to_wire`] (unknown bytes read as `Sensitive`,
/// the conservative choice: never migrated).
pub fn locality_from_wire(b: u8) -> Locality {
    if b == 1 {
        Locality::Flexible
    } else {
        Locality::Sensitive
    }
}

/// An app instance by CLI name. An optional `@N` suffix scales the
/// workload — `quicksort@64` sorts 64 root segments instead of
/// [`Quicksort::ROOTS`], `kmeans@12` runs 12 Lloyd iterations instead
/// of [`KMeans::ROUNDS`] — so fault-injection runs can be stretched
/// long enough for a kill to land mid-computation.
pub fn app_by_name(name: &str, seed: u64) -> Option<Box<dyn ClusterApp>> {
    let (base, size) = match name.split_once('@') {
        Some((base, n)) => (base, Some(n.parse::<u32>().ok()?.max(1))),
        None => (name, None),
    };
    match base {
        "quicksort" | "qs" => Some(Box::new(Quicksort::sized(
            seed,
            size.map(|n| n as usize).unwrap_or(Quicksort::ROOTS),
        ))),
        "kmeans" | "k-means" => Some(Box::new(KMeans::sized(
            seed,
            size.unwrap_or(KMeans::ROUNDS),
        ))),
        _ => None,
    }
}

// ---------------------------------------------------------------- quicksort

/// Parallel quicksort over seeded data carried in task payloads.
///
/// Each root covers one segment of the input; a task partitions its
/// slice around a pivot and spawns one child per side, sorting
/// in-place once a slice fits [`Quicksort::LEAF`]. The contribution is
/// a commutative multiset digest `[count, Σx, Σ mix64(x)]` — any
/// execution order (and any re-execution after a crash, since
/// contributions are folded exactly once per task id) must reproduce
/// the digest of the original input.
pub struct Quicksort {
    seed: u64,
    roots: usize,
    expected: Vec<u64>,
}

impl Quicksort {
    /// Elements per root segment.
    pub const SEGMENT: usize = 4096;
    /// Default number of root segments.
    pub const ROOTS: usize = 8;
    /// Below this, sort sequentially.
    pub const LEAF: usize = 512;

    /// A quicksort instance over data derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::sized(seed, Self::ROOTS)
    }

    /// A quicksort instance with `roots` segments (workload scaling).
    pub fn sized(seed: u64, roots: usize) -> Self {
        let mut expected = vec![0u64; 3];
        for r in 0..roots {
            for x in Self::segment(seed, r) {
                expected[0] = expected[0].wrapping_add(1);
                expected[1] = expected[1].wrapping_add(x);
                expected[2] = expected[2].wrapping_add(mix64(x));
            }
        }
        Quicksort {
            seed,
            roots,
            expected,
        }
    }

    fn segment(seed: u64, r: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed ^ mix64(r as u64 + 1));
        (0..Self::SEGMENT).map(|_| rng.next_u64() >> 16).collect()
    }

    fn digest(slice: &[u64]) -> Vec<u64> {
        let mut d = vec![0u64; 3];
        for &x in slice {
            d[0] = d[0].wrapping_add(1);
            d[1] = d[1].wrapping_add(x);
            d[2] = d[2].wrapping_add(mix64(x));
        }
        d
    }
}

impl ClusterApp for Quicksort {
    fn name(&self) -> &'static str {
        "quicksort"
    }

    fn roots(&self, round: u32, _prev: Option<&[u64]>) -> Option<Vec<RootSpec>> {
        if round > 0 {
            return None;
        }
        Some(
            (0..self.roots)
                .map(|r| RootSpec {
                    locality: Locality::Flexible,
                    kind: 0,
                    est: Self::SEGMENT as u64 * 100,
                    payload: Self::segment(self.seed, r),
                })
                .collect(),
        )
    }

    fn execute(&self, task: &WireTask, scope: &mut dyn ClusterScope) -> Vec<u64> {
        let data = &task.payload;
        if data.len() <= Self::LEAF {
            let mut sorted = data.clone();
            sorted.sort_unstable();
            // The sort is the work; the digest is what travels up.
            return Self::digest(&sorted);
        }
        // Median-of-three pivot keeps recursion depth sane on the
        // (already random) data without biasing the digest.
        let a = data[0];
        let b = data[data.len() / 2];
        let c = data[data.len() - 1];
        let pivot = a.max(b).min(a.min(b).max(c));
        let lo: Vec<u64> = data.iter().copied().filter(|&x| x < pivot).collect();
        let hi: Vec<u64> = data.iter().copied().filter(|&x| x > pivot).collect();
        let mid = data.len() - lo.len() - hi.len(); // pivot duplicates
        for side in [lo, hi] {
            if !side.is_empty() {
                let est = side.len() as u64 * 100;
                scope.spawn(Locality::Flexible, 0, est, side);
            }
        }
        // Contribution of the duplicates retained at this node.
        let mut d = vec![0u64; 3];
        d[0] = mid as u64;
        d[1] = (pivot).wrapping_mul(mid as u64);
        d[2] = mix64(pivot).wrapping_mul(mid as u64);
        d
    }

    fn validate(&self, result: &[u64]) -> Result<(), String> {
        if result == self.expected.as_slice() {
            Ok(())
        } else {
            Err(format!(
                "quicksort digest mismatch: got {result:?}, want {:?}",
                self.expected
            ))
        }
    }
}

// ------------------------------------------------------------------ k-means

/// Lloyd's k-means over points regenerated per chunk from the seed.
///
/// Each round is one Lloyd iteration driven by the coordinator: the
/// previous round's fold carries the centroids (fixed-point), each
/// root task re-generates its chunk of points from the seed, assigns
/// them to the nearest centroid, and contributes per-centroid counts
/// and coordinate sums; the coordinator derives the next centroids
/// from the fold. Tasks are pure functions of `(seed, chunk, round
/// centroids)`, so re-execution after a crash is exact.
pub struct KMeans {
    seed: u64,
    rounds: u32,
}

impl KMeans {
    /// Cluster count.
    pub const K: usize = 8;
    /// Point dimensionality.
    pub const DIM: usize = 4;
    /// Chunks (= root tasks per round).
    pub const CHUNKS: usize = 16;
    /// Points per chunk.
    pub const POINTS: usize = 2048;
    /// Default Lloyd iterations.
    pub const ROUNDS: u32 = 5;
    /// Fixed-point scale for centroid coordinates.
    pub const SCALE: u64 = 1 << 16;

    /// A k-means instance over points derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::sized(seed, Self::ROUNDS)
    }

    /// A k-means instance running `rounds` Lloyd iterations.
    pub fn sized(seed: u64, rounds: u32) -> Self {
        KMeans { seed, rounds }
    }

    /// Layout of a round's fold: `K * (1 + DIM)` words — per centroid
    /// a count then `DIM` coordinate sums (fixed-point).
    pub const FOLD_LEN: usize = Self::K * (1 + Self::DIM);

    fn point(seed: u64, chunk: usize, i: usize) -> [u64; Self::DIM] {
        let mut rng = SplitMix64::new(seed ^ mix64((chunk as u64) << 32 | i as u64));
        // Points in [0, 1024) fixed-point, clustered around K anchors.
        let anchor = (rng.next_u64() % Self::K as u64) * 128;
        let mut p = [0u64; Self::DIM];
        for d in p.iter_mut() {
            *d = (anchor + rng.next_u64() % 64) * Self::SCALE;
        }
        p
    }

    fn initial_centroids() -> Vec<u64> {
        // Spread along the diagonal; encoded like a fold so round 0
        // and rounds 1+ share the payload shape.
        let mut fold = vec![0u64; Self::FOLD_LEN];
        for k in 0..Self::K {
            fold[k * (1 + Self::DIM)] = 1;
            for d in 0..Self::DIM {
                fold[k * (1 + Self::DIM) + 1 + d] = (k as u64 * 128 + 32) * Self::SCALE;
            }
        }
        fold
    }

    /// Centroids (fixed-point) from a fold: sum/count per coordinate,
    /// keeping the previous centroid when a cluster went empty.
    pub fn centroids_from_fold(fold: &[u64]) -> Vec<u64> {
        let mut cs = vec![0u64; Self::K * Self::DIM];
        for k in 0..Self::K {
            let base = k * (1 + Self::DIM);
            let count = fold[base].max(1);
            for d in 0..Self::DIM {
                cs[k * Self::DIM + d] = fold[base + 1 + d] / count;
            }
        }
        cs
    }

    fn assign(point: &[u64; Self::DIM], centroids: &[u64]) -> usize {
        let mut best = 0usize;
        let mut best_d = u64::MAX;
        for k in 0..Self::K {
            let mut dist = 0u64;
            for d in 0..Self::DIM {
                let diff = point[d].abs_diff(centroids[k * Self::DIM + d]);
                // Scale down before squaring so the sum can't wrap.
                let diff = diff / Self::SCALE;
                dist = dist.saturating_add(diff * diff);
            }
            if dist < best_d {
                best_d = dist;
                best = k;
            }
        }
        best
    }

    fn chunk_fold(seed: u64, chunk: usize, centroids: &[u64]) -> Vec<u64> {
        let mut fold = vec![0u64; Self::FOLD_LEN];
        for i in 0..Self::POINTS {
            let p = Self::point(seed, chunk, i);
            let k = Self::assign(&p, centroids);
            let base = k * (1 + Self::DIM);
            fold[base] = fold[base].wrapping_add(1);
            for d in 0..Self::DIM {
                fold[base + 1 + d] = fold[base + 1 + d].wrapping_add(p[d]);
            }
        }
        fold
    }

    /// The whole computation, sequentially (validation oracle).
    pub fn sequential_final(seed: u64, rounds: u32) -> Vec<u64> {
        let mut fold = Self::initial_centroids();
        for _ in 0..rounds {
            let centroids = Self::centroids_from_fold(&fold);
            let mut next = vec![0u64; Self::FOLD_LEN];
            for chunk in 0..Self::CHUNKS {
                let f = Self::chunk_fold(seed, chunk, &centroids);
                for (a, b) in next.iter_mut().zip(&f) {
                    *a = a.wrapping_add(*b);
                }
            }
            fold = next;
        }
        fold
    }
}

impl ClusterApp for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn roots(&self, round: u32, prev: Option<&[u64]>) -> Option<Vec<RootSpec>> {
        if round >= self.rounds {
            return None;
        }
        let fold = match prev {
            Some(f) => f.to_vec(),
            None => Self::initial_centroids(),
        };
        let centroids = Self::centroids_from_fold(&fold);
        Some(
            (0..Self::CHUNKS)
                .map(|chunk| {
                    let mut payload = vec![chunk as u64];
                    payload.extend_from_slice(&centroids);
                    RootSpec {
                        locality: Locality::Flexible,
                        kind: 1,
                        est: Self::POINTS as u64 * 50,
                        payload,
                    }
                })
                .collect(),
        )
    }

    fn execute(&self, task: &WireTask, _scope: &mut dyn ClusterScope) -> Vec<u64> {
        let chunk = task.payload[0] as usize;
        let centroids = &task.payload[1..];
        Self::chunk_fold(self.seed, chunk, centroids)
    }

    fn validate(&self, result: &[u64]) -> Result<(), String> {
        let want = Self::sequential_final(self.seed, self.rounds);
        if result == want.as_slice() {
            Ok(())
        } else {
            Err(format!(
                "kmeans fold mismatch: got {result:?}, want {want:?}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CollectScope(Vec<(Locality, u16, u64, Vec<u64>)>);
    impl ClusterScope for CollectScope {
        fn spawn(&mut self, locality: Locality, kind: u16, est: u64, payload: Vec<u64>) {
            self.0.push((locality, kind, est, payload));
        }
    }

    /// Drive an app to completion sequentially through the trait —
    /// the result must validate, proving payload-only re-execution
    /// carries enough state.
    fn run_sequential(app: &dyn ClusterApp) -> Vec<u64> {
        let mut prev: Option<Vec<u64>> = None;
        let mut round = 0u32;
        while let Some(roots) = app.roots(round, prev.as_deref()) {
            let mut fold: Option<Vec<u64>> = None;
            let mut stack: Vec<WireTask> = roots
                .into_iter()
                .enumerate()
                .map(|(i, r)| WireTask {
                    id: mix64((round as u64) << 32 | i as u64),
                    home: 0,
                    locality: locality_to_wire(r.locality),
                    flags: 0,
                    kind: r.kind,
                    est: r.est,
                    payload: r.payload,
                })
                .collect();
            while let Some(t) = stack.pop() {
                let mut scope = CollectScope(Vec::new());
                let contrib = app.execute(&t, &mut scope);
                match &mut fold {
                    None => fold = Some(contrib),
                    Some(f) => {
                        for (a, b) in f.iter_mut().zip(&contrib) {
                            *a = a.wrapping_add(*b);
                        }
                    }
                }
                for (i, (loc, kind, est, payload)) in scope.0.into_iter().enumerate() {
                    stack.push(WireTask {
                        id: mix64(t.id ^ (i as u64 + 1)),
                        home: 0,
                        locality: locality_to_wire(loc),
                        flags: 0,
                        kind,
                        est,
                        payload,
                    });
                }
            }
            prev = fold;
            round += 1;
        }
        prev.expect("at least one round")
    }

    #[test]
    fn quicksort_validates_sequentially() {
        let app = Quicksort::new(0xACE);
        let result = run_sequential(&app);
        app.validate(&result).unwrap();
    }

    #[test]
    fn quicksort_rejects_corrupt_digest() {
        let app = Quicksort::new(0xACE);
        let mut result = run_sequential(&app);
        result[1] ^= 1;
        assert!(app.validate(&result).is_err());
    }

    #[test]
    fn kmeans_validates_sequentially() {
        let app = KMeans::new(7);
        let result = run_sequential(&app);
        app.validate(&result).unwrap();
    }

    #[test]
    fn kmeans_execute_is_deterministic() {
        let app = KMeans::new(7);
        let roots = app.roots(0, None).unwrap();
        let t = WireTask {
            id: 1,
            home: 0,
            locality: 1,
            flags: 0,
            kind: 1,
            est: roots[3].est,
            payload: roots[3].payload.clone(),
        };
        let mut s1 = CollectScope(Vec::new());
        let mut s2 = CollectScope(Vec::new());
        assert_eq!(app.execute(&t, &mut s1), app.execute(&t, &mut s2));
    }

    #[test]
    fn unknown_app_name_is_none() {
        assert!(app_by_name("nope", 1).is_none());
        assert!(app_by_name("quicksort", 1).is_some());
        assert!(app_by_name("kmeans", 1).is_some());
    }

    #[test]
    fn sized_app_names_parse_and_validate() {
        assert!(app_by_name("quicksort@0x", 1).is_none());
        assert!(app_by_name("quicksort@", 1).is_none());
        let qs = app_by_name("quicksort@2", 0xACE).unwrap();
        qs.validate(&run_sequential(qs.as_ref())).unwrap();
        let km = app_by_name("kmeans@2", 7).unwrap();
        km.validate(&run_sequential(km.as_ref())).unwrap();
    }
}
