//! Hybrid logical clock: the timestamp domain of cluster traces.
//!
//! Each place process stamps every trace event and every outgoing
//! frame with one 64-bit HLC value: the wall-clock milliseconds since
//! the Unix epoch in the high 48 bits, a logical counter in the low
//! 16. Receivers fold the sender's stamp into their own clock before
//! handling a frame, so a stamp taken after receipt is strictly
//! greater than the stamp the sender took before sending. Sorting the
//! merged per-place JSONL streams by `(t, place, line)` therefore
//! yields a causal linearization — exactly what the happens-before
//! validator needs (it joins clocks by task id, which requires the
//! `spawn` line to precede the `task_start` line in file order).
//!
//! The logical counter may carry into the millisecond field when more
//! than 65 536 events land in one physical millisecond; the clock then
//! simply runs a little ahead of wall time, which preserves every
//! ordering property (monotonicity per place, receive > send).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Bits of the logical counter below the physical milliseconds.
pub const LOGICAL_BITS: u32 = 16;

/// A shareable hybrid logical clock (one per place process).
#[derive(Debug, Default)]
pub struct Hlc {
    packed: AtomicU64,
}

fn wall_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Hlc {
    /// A clock starting at the current wall time.
    pub fn new() -> Self {
        Hlc {
            packed: AtomicU64::new(wall_ms() << LOGICAL_BITS),
        }
    }

    /// Take a fresh stamp: strictly greater than every stamp this
    /// clock has issued or observed, and at least the current wall
    /// time.
    pub fn tick(&self) -> u64 {
        let floor = wall_ms() << LOGICAL_BITS;
        let prev = self
            .packed
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some((cur + 1).max(floor))
            })
            .expect("fetch_update closure always returns Some");
        // fetch_update returns the *previous* value; the stamp issued
        // is the transition applied to it.
        (prev + 1).max(floor)
    }

    /// Fold a remote stamp (from a received frame) into the clock:
    /// afterwards every `tick` is strictly greater than `remote`.
    pub fn observe(&self, remote: u64) {
        self.packed
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.max(remote))
            })
            .expect("fetch_update closure always returns Some");
    }

    /// The most recent stamp without advancing the clock.
    pub fn peek(&self) -> u64 {
        self.packed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let c = Hlc::new();
        let mut prev = c.tick();
        for _ in 0..10_000 {
            let t = c.tick();
            assert!(t > prev, "{t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn observe_dominates_future_ticks() {
        let c = Hlc::new();
        let far = (wall_ms() + 60_000) << LOGICAL_BITS;
        c.observe(far);
        assert!(c.tick() > far);
    }

    #[test]
    fn stamps_track_wall_time() {
        let c = Hlc::new();
        let t = c.tick() >> LOGICAL_BITS;
        let now = wall_ms();
        assert!(t >= now - 1 && t <= now + 1, "hlc ms {t} vs wall {now}");
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        use std::sync::Arc;
        let c = Arc::new(Hlc::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..5_000).map(|_| c.tick()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate HLC stamps under contention");
    }
}
