//! One place of a real multi-process cluster.
//!
//! Each place is an OS process. Work-stealing follows the same
//! [`Policy`] step sequences as the threaded runtime, but the remote
//! tier goes over real sockets: a thief sends [`Frame::StealProbe`] to
//! the victim place, waits on a wall-clock timeout from
//! [`crate::clock::WallRetry`], and backs off exactly like the
//! simulator's virtual-time retry path.
//!
//! # The coordinator registry
//!
//! Place 0 is the coordinator; the launcher never kills it. It holds a
//! *task registry*: every task in the system has an entry with its
//! payload, its current location, and whether it finished. The entry
//! *is* the lease — when a place dies, the coordinator sweeps the
//! registry for pending tasks located there and re-injects their
//! payloads elsewhere.
//!
//! The registry is maintained by three frames, all flowing to place 0
//! over one ordered stream per place:
//!
//! - [`Frame::SpawnNote`]: a spawner registers its children (payloads
//!   included) *before* enqueueing them locally. Because the spawner's
//!   own [`Frame::FinishDec`] follows its spawn notes on the same
//!   stream, the parent is still outstanding when the children
//!   register, so the global count never touches zero early.
//! - [`Frame::TaskMoved`]: a thief reports where stolen tasks now
//!   live, so the lease tracks the holder.
//! - [`Frame::FinishDec`]: the executor reports completion with the
//!   task's fold contribution; duplicates are ignored (the entry is
//!   already done), which is what makes crash-recovery re-execution
//!   *effectively exactly-once* at the fold.
//!
//! Re-injected tasks carry [`TASK_RECOVERED`]: they may have executed
//! before, so their children are not enqueued locally but routed
//! through the registry, which drops any child that is already alive
//! or done elsewhere. Deterministic ids (child = `mix64(parent ^
//! (index+1))`) make the re-execution regenerate the same ids, so the
//! dedup is exact.
//!
//! # Write-ahead tracing
//!
//! Every trace line is written (unbuffered) *before* the socket write
//! it describes: `spawn` before the spawn note, `task_end` before the
//! finish notice. A SIGKILL can therefore truncate the tail of a trace
//! but never hide an event whose effects escaped to a live place —
//! which is what lets the merged trace prove exactly-once execution.
//!
//! # Accepted races
//!
//! Failure detection runs on connection EOF plus heartbeat silence
//! (`detect_ms`), and the registry sweep waits `reclaim_grace_ms` so
//! in-flight [`Frame::TaskMoved`] notices can land before payloads are
//! re-injected. A notice delayed beyond the grace window could still
//! lead to a duplicate execution; the happens-before validator flags
//! exactly this if it ever fires. See `docs/cluster.md`.

use crate::app::{
    app_by_name, locality_from_wire, locality_to_wire, mix64, ClusterApp, ClusterScope,
};
use crate::clock::{cluster_retry_defaults, reconnect_defaults, Reconnector, WallRetry};
use crate::hlc::Hlc;
use crate::wire::{Frame, WireTask, TASK_RECOVERED, WIRE_VERSION};
use distws_core::{ClusterConfig, GlobalWorkerId, Locality, PlaceId, SplitMix64, TaskId, WorkerId};
use distws_deque::{deque as chase_lev, SharedFifo, Stealer, Worker as PrivateDeque};
use distws_json::Value;
use distws_runtime::{IdleAction, IdleGate, SharedBoard};
use distws_sched::protocol::lease_is_stale;
use distws_sched::{ClusterView, DequeChoice, Policy, StealStep, TaskMeta};
use distws_trace::{StealTier, TraceEvent, TraceEventKind};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Construct a policy by (case-insensitive) CLI name.
pub fn policy_by_name(name: &str) -> Option<Box<dyn Policy>> {
    use distws_sched::{AdaptiveWs, DistWs, DistWsNs, LifelineWs, RandomWs, X10Ws};
    Some(match name.to_ascii_lowercase().as_str() {
        "x10ws" | "x10" => Box::new(X10Ws),
        "distws" | "dist" => Box::new(DistWs::default()),
        "distws-ns" | "distwsns" => Box::new(DistWsNs::default()),
        "randomws" | "random" => Box::new(RandomWs),
        "lifelinews" | "lifeline" => Box::new(LifelineWs::default()),
        "adaptivews" | "adaptive" => Box::new(AdaptiveWs::default()),
        _ => return None,
    })
}

/// Socket family the cluster rendezvouses over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Unix domain sockets at `dir/place-<p>.sock` (default).
    Unix,
    /// Loopback TCP; each place publishes its port in
    /// `dir/place-<p>.addr` (written atomically via rename).
    Tcp,
}

/// Everything one place process needs to run.
#[derive(Debug, Clone)]
pub struct PlaceConfig {
    /// This place's id (0 = coordinator).
    pub place: u32,
    /// Total places.
    pub places: u32,
    /// Worker threads per place.
    pub wpp: u32,
    /// Incarnation epoch (0 first boot, +1 per restart).
    pub epoch: u32,
    /// Socket family.
    pub transport: Transport,
    /// Rendezvous directory for sockets / addr files.
    pub dir: PathBuf,
    /// Application name (see [`app_by_name`]).
    pub app: String,
    /// Application + rng seed.
    pub seed: u64,
    /// Policy name (see [`policy_by_name`]).
    pub policy: String,
    /// Where this incarnation writes its JSONL trace.
    pub trace_path: PathBuf,
    /// Coordinator only: where to write `report.json`.
    pub report_path: Option<PathBuf>,
    /// Heartbeat period.
    pub hb_ms: u64,
    /// Silence window after which a peer is presumed dead.
    pub detect_ms: u64,
    /// Wait after a death before re-injecting its leased tasks, so
    /// in-flight `TaskMoved` notices can land.
    pub reclaim_grace_ms: u64,
    /// Coordinator: per-round completion deadline (watchdog).
    pub round_timeout_ms: u64,
    /// Follower: overall deadline waiting for `Shutdown`.
    pub run_deadline_ms: u64,
}

impl PlaceConfig {
    /// A config with the default timing parameters.
    pub fn new(place: u32, places: u32, wpp: u32, dir: PathBuf, app: &str) -> Self {
        PlaceConfig {
            place,
            places,
            wpp,
            epoch: 0,
            transport: Transport::Unix,
            dir: dir.clone(),
            app: app.to_string(),
            seed: 42,
            policy: "distws".to_string(),
            trace_path: dir.join(format!("trace-p{place}-e0.jsonl")),
            report_path: None,
            hb_ms: 50,
            detect_ms: 300,
            reclaim_grace_ms: 50,
            round_timeout_ms: 30_000,
            run_deadline_ms: 120_000,
        }
    }
}

/// Exit code: the coordinator's result failed validation.
pub const EXIT_BAD_RESULT: i32 = 2;
/// Exit code: a completion deadline expired (watchdog).
pub const EXIT_DEADLINE: i32 = 3;

// ---------------------------------------------------------------- transport

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

fn sock_path(dir: &std::path::Path, p: u32) -> PathBuf {
    dir.join(format!("place-{p}.sock"))
}

fn addr_path(dir: &std::path::Path, p: u32) -> PathBuf {
    dir.join(format!("place-{p}.addr"))
}

// ---------------------------------------------------------------- peer state

const EPOCH_UNSEEN: u32 = u32::MAX;

/// Outbound state for one peer. Sends are **queue-and-forget**: a
/// dedicated writer thread per peer drains `outbox` over the socket.
/// No caller ever performs a socket write while holding a lock — a
/// blocking `send(2)` under the registry lock would stall the reader
/// threads (which need that lock), stop inbound draining, fill the
/// peer's buffers in both directions, and deadlock the whole cluster.
struct Peer {
    outbox: Mutex<std::collections::VecDeque<Frame>>,
    outbox_cv: Condvar,
    alive: AtomicBool,
    epoch: AtomicU32,
    last_heard: Mutex<Instant>,
    /// Last busy-count heartbeat applied to the board (delta base).
    last_busy: AtomicU32,
}

// --------------------------------------------------------- coordinator state

struct Entry {
    loc: u32,
    /// Incarnation of `loc` the task was handed to. A lease is only
    /// reclaimable by a sweep of that same (or a later) incarnation:
    /// comparing epochs is what distinguishes "leased to the dead
    /// incarnation" (reclaim) from "leased to a freshly restarted one
    /// whose revival the registry has not processed yet" (keep).
    loc_epoch: u32,
    /// True when `loc` itself vouched for holding the task (it spawned
    /// it, confirmed a steal, or the coordinator pushed it there over
    /// a reliable outbox). False while the only evidence is a victim's
    /// lease: the payload was in flight from `lessor` to `loc` and may
    /// have died with the lessor.
    settled: bool,
    /// The place/incarnation that handed the task to `loc` when
    /// `settled` is false. Its death puts the hand-off in doubt, so
    /// the sweep must query `loc` before trusting the lease.
    lessor: Option<(u32, u32)>,
    done: bool,
    /// Payload, kept while pending so the lease can be reclaimed.
    task: Option<WireTask>,
}

/// An in-progress custody poll for one reclaim candidate: the sweep
/// asked every live place whether it holds the task; the task is
/// re-injected only once every answer is "no" (a place's death counts
/// as "no").
struct Reclaim {
    /// The dead place whose sweep started the poll (trace attribution).
    victim: u32,
    /// Places whose answer is still outstanding.
    awaiting: HashSet<u32>,
}

#[derive(Default)]
struct Registry {
    tasks: HashMap<u64, Entry>,
    outstanding: u64,
    fold: Vec<u64>,
    folded_any: bool,
    /// FinishDec that arrived before the task's SpawnNote.
    orphan_finish: HashMap<u64, Vec<u64>>,
    /// TaskMoved that arrived before the task's SpawnNote:
    /// `(holder, holder_epoch, sender, sender_epoch)`.
    orphan_moved: HashMap<u64, (u32, u32, u32, u32)>,
    /// Custody polls in flight (see [`Reclaim`]).
    reclaims: HashMap<u64, Reclaim>,
    dead: HashSet<u32>,
    /// Highest incarnation of each place for which a reclaim sweep has
    /// started. A lease stamped with an epoch `<= swept[p]` points at
    /// an incarnation whose tasks are gone; a higher epoch means the
    /// holder restarted and the copy is alive there.
    swept: HashMap<u32, u32>,
    ever_failed: HashSet<u32>,
    route_rr: u32,
}

struct Coord {
    reg: Mutex<Registry>,
    latch: Condvar,
}

// ---------------------------------------------------------------- the place

struct Node {
    cfg: PlaceConfig,
    cluster: ClusterConfig,
    hlc: Hlc,
    trace: Mutex<File>,
    board: SharedBoard,
    /// The place's shared FIFO deque (the pool remote thieves see).
    shared: SharedFifo<WireTask>,
    /// Tasks pushed here by `TaskMigrate`, drained on `ProbeNetwork`.
    inbox: SharedFifo<WireTask>,
    peers: Vec<Peer>,
    probes: ProbeTable,
    probe_seq: AtomicU64,
    app: Box<dyn ClusterApp>,
    /// Prototype policy, also consulted by reader threads
    /// (`may_migrate` filtering on the victim side).
    policy: Mutex<Box<dyn Policy>>,
    /// Task ids currently held by this place — enqueued or executing
    /// (dedup for doctored or raced `TaskMigrate` frames, and the
    /// ground truth behind `TaskAnswer`).
    resident: Mutex<HashSet<u64>>,
    /// Task ids this place finished (dedup backstop).
    done: Mutex<HashSet<u64>>,
    /// Tasks this place answered "no" for in a custody poll, keyed to
    /// the dead incarnation whose in-flight payload was in doubt:
    /// `id -> (victim, victim_epoch)`. A `StealReply` from that
    /// incarnation arriving *after* the answer is dropped, so the
    /// answer cannot be invalidated retroactively. Lock order:
    /// `resident` before `done` before `disowned`.
    disowned: Mutex<HashMap<u64, (u32, u32)>>,
    shutdown: AtomicBool,
    /// `places_failed` carried by the Shutdown frame (follower side).
    shutdown_failed: AtomicU32,
    /// Places whose death was noticed but not yet processed.
    death_queue: Mutex<Vec<(u32, u32)>>,
    coord: Option<Coord>,
}

struct ProbeTable {
    slots: Mutex<HashMap<u64, Option<Vec<WireTask>>>>,
    cv: Condvar,
}

impl ProbeTable {
    fn new() -> Self {
        ProbeTable {
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    fn register(&self, id: u64) {
        self.slots.lock().unwrap().insert(id, None);
    }

    /// Deliver a reply. Returns false if the probe was abandoned (late
    /// reply — the caller must salvage the tasks).
    fn fill(&self, id: u64, tasks: Vec<WireTask>) -> bool {
        let mut slots = self.slots.lock().unwrap();
        match slots.get_mut(&id) {
            Some(slot) => {
                *slot = Some(tasks);
                self.cv.notify_all();
                true
            }
            None => false,
        }
    }

    /// Wait for a reply until the timeout; the slot is removed either
    /// way.
    fn wait(&self, id: u64, timeout: Duration) -> Option<Vec<WireTask>> {
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(Some(_)) = slots.get(&id) {
                return slots.remove(&id).flatten();
            }
            let now = Instant::now();
            if now >= deadline {
                return slots.remove(&id).flatten();
            }
            let (guard, _) = self.cv.wait_timeout(slots, deadline - now).unwrap();
            slots = guard;
        }
    }
}

/// Collects children spawned by `ClusterApp::execute`.
struct Collect(Vec<(Locality, u16, u64, Vec<u64>)>);

impl ClusterScope for Collect {
    fn spawn(&mut self, locality: Locality, kind: u16, est: u64, payload: Vec<u64>) {
        self.0.push((locality, kind, est, payload));
    }
}

impl Node {
    fn own(&self) -> u32 {
        self.cfg.place
    }

    fn own_place(&self) -> PlaceId {
        PlaceId(self.cfg.place)
    }

    fn is_coord(&self) -> bool {
        self.cfg.place == 0
    }

    fn coord(&self) -> &Coord {
        self.coord.as_ref().expect("coordinator state")
    }

    // ------------------------------------------------------------- tracing

    /// Write one event at a fresh HLC tick. Unbuffered: the line is
    /// durable before any socket write that follows it.
    fn emit(&self, worker: GlobalWorkerId, place: PlaceId, kind: TraceEventKind) -> u64 {
        let t = self.hlc.tick();
        let ev = TraceEvent {
            t_ns: t,
            worker,
            place,
            kind,
        };
        let mut f = self.trace.lock().unwrap();
        let _ = writeln!(f, "{}", ev.to_jsonl());
        t
    }

    /// Write several events sharing one HLC tick (a remote steal's
    /// `steal_success` plus its `migration` lines, which the
    /// conformance checker groups by identical `t`).
    fn emit_batch(&self, worker: GlobalWorkerId, place: PlaceId, kinds: &[TraceEventKind]) {
        let t = self.hlc.tick();
        let mut f = self.trace.lock().unwrap();
        for kind in kinds {
            let ev = TraceEvent {
                t_ns: t,
                worker,
                place,
                kind: *kind,
            };
            let _ = writeln!(f, "{}", ev.to_jsonl());
        }
    }

    // ------------------------------------------------------------- sending

    fn dial(&self, to: u32) -> io::Result<Conn> {
        match self.cfg.transport {
            Transport::Unix => UnixStream::connect(sock_path(&self.cfg.dir, to)).map(Conn::Unix),
            Transport::Tcp => {
                let addr = fs::read_to_string(addr_path(&self.cfg.dir, to))?;
                TcpStream::connect(addr.trim()).map(Conn::Tcp)
            }
        }
    }

    fn hello(&self) -> Frame {
        Frame::Hello {
            hlc: self.hlc.tick(),
            version: WIRE_VERSION,
            place: self.cfg.place,
            places: self.cfg.places,
            wpp: self.cfg.wpp,
            epoch: self.cfg.epoch,
        }
    }

    /// Queue-and-forget send: push the frame onto the peer's outbox
    /// for its dedicated writer thread. Callers never perform socket
    /// IO, so no lock is ever held across a blocking write — that was
    /// the distributed buffer deadlock (a coordinator write stalling
    /// under the registry lock stops its readers, the peer's send then
    /// stalls in *its* reader, and both socket buffers fill).
    ///
    /// Frames to a peer already noted dead are dropped: every frame
    /// whose loss matters is covered by the coordinator's
    /// lease/registry recovery, and the coordinator (place 0) is never
    /// marked dead.
    fn send(&self, to: u32, frame: Frame) {
        let peer = &self.peers[to as usize];
        if to != 0 && !peer.alive.load(Ordering::Acquire) {
            return;
        }
        peer.outbox.lock().unwrap().push_back(frame);
        peer.outbox_cv.notify_one();
    }

    /// Length of a peer's pending outbox (used to avoid piling
    /// periodic beacons behind a stalled writer).
    fn outbox_len(&self, to: u32) -> usize {
        self.peers[to as usize].outbox.lock().unwrap().len()
    }

    // ---------------------------------------------------- failure handling

    /// Mark a peer dead (idempotent) and queue coordinator-side
    /// processing. Clears the peer's pending outbox: those frames
    /// were addressed to the incarnation that just died, and a
    /// writer whose reconnect budget happens to span the whole dead
    /// window would otherwise deliver them to the *next* incarnation
    /// (stale `TaskMigrate`s there duplicate execution, because the
    /// lease sweep re-injects the same tasks elsewhere meanwhile).
    fn note_possible_death(&self, p: u32) {
        if p == self.own() || p == 0 {
            // The coordinator is never declared dead: its silence
            // would mean the run is over anyway.
            return;
        }
        let peer = &self.peers[p as usize];
        if peer.alive.swap(false, Ordering::AcqRel) {
            let dying = peer.epoch.load(Ordering::Acquire);
            peer.outbox.lock().unwrap().clear();
            // Clear the dead peer's board contribution.
            let busy = peer.last_busy.swap(0, Ordering::AcqRel);
            for _ in 0..busy {
                self.board.worker_idle(PlaceId(p));
            }
            self.board.set_shared_len(PlaceId(p), 0);
            self.death_queue.lock().unwrap().push((p, dying));
        }
    }

    /// The incarnation of `p` as currently known to this node. An
    /// unseen peer maps to epoch 0: initial processes start at epoch 0
    /// and restarted incarnations always say Hello (with an epoch ≥ 1)
    /// before any work reaches them.
    fn place_epoch(&self, p: u32) -> u32 {
        if p == self.own() {
            return self.cfg.epoch;
        }
        let e = self.peers[p as usize].epoch.load(Ordering::Acquire);
        if e == EPOCH_UNSEEN {
            0
        } else {
            e
        }
    }

    /// Coordinator: sweep the death of incarnation `dying` of place
    /// `p`. Emit `place_fail`, count the dead place as "no" in every
    /// custody poll still waiting on it, wait the reclaim grace so
    /// in-flight `TaskMoved` can land, then open a custody poll for
    /// every task whose payload the dead incarnation was the last
    /// known carrier of: entries still located there
    /// (`loc == p` with `lease_is_stale(loc_epoch, dying)` — the
    /// shared fencing predicate from `distws_sched::protocol`, also
    /// used by the model's cluster-era transitions) *and* entries the
    /// incarnation leased away without the recipient confirming —
    /// either side of that hand-off may or may not have happened, and
    /// only the live peers know. Each candidate is re-injected only
    /// once every live place answers "doesn't have it". Leases
    /// stamped with a later epoch belong to a restarted incarnation
    /// and are left alone.
    fn coord_process_death(self: &Arc<Self>, p: u32, dying: u32) {
        let dying = if dying == EPOCH_UNSEEN { 0 } else { dying };
        let revived = {
            let mut reg = self.coord().reg.lock().unwrap();
            if reg.swept.get(&p).is_some_and(|&s| s >= dying) {
                return; // this incarnation's sweep already ran
            }
            reg.swept.insert(p, dying);
            reg.ever_failed.insert(p);
            // If a newer incarnation already said Hello, the place is
            // back: sweep the old incarnation's leases but do not mark
            // the place dead (nothing would ever un-mark it).
            let revived =
                self.peers[p as usize].alive.load(Ordering::Acquire) && self.place_epoch(p) > dying;
            if !revived {
                reg.dead.insert(p);
            }
            // The dead place will never answer pending polls; treat
            // its missing answers as "no".
            self.poll_drop_answerer(&mut reg, p);
            revived
        };
        let w = GlobalWorkerId(p * self.cfg.wpp);
        self.emit(w, PlaceId(p), TraceEventKind::PlaceFail);
        if revived {
            self.emit(w, PlaceId(p), TraceEventKind::PlaceRestart);
        }
        let node = Arc::clone(self);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(node.cfg.reclaim_grace_ms));
            let mut reg = node.coord().reg.lock().unwrap();
            // Full scan rather than a pre-grace snapshot: entries
            // registered *during* the grace window (late SpawnNotes
            // drained from the dead incarnation's buffers) must be
            // reclaimed too.
            let ids: Vec<u64> = reg
                .tasks
                .iter()
                .filter(|(_, e)| {
                    !e.done
                        && ((e.loc == p && lease_is_stale(e.loc_epoch, dying))
                            || (!e.settled
                                && e.lessor
                                    .is_some_and(|(lp, le)| lp == p && lease_is_stale(le, dying))))
                })
                .map(|(id, _)| *id)
                .collect();
            for id in ids {
                node.poll_custody_locked(&mut reg, id, p, dying);
            }
        });
    }

    /// Open (or immediately resolve) a custody poll for one reclaim
    /// candidate: ask every live place whether it holds the task. The
    /// coordinator answers for itself synchronously; remote answers
    /// arrive as `TaskAnswer` frames.
    fn poll_custody_locked(&self, reg: &mut Registry, id: u64, victim: u32, victim_epoch: u32) {
        if reg.reclaims.contains_key(&id) {
            return; // an earlier sweep is already polling
        }
        match reg.tasks.get(&id) {
            None | Some(Entry { done: true, .. }) => return,
            Some(_) => {}
        }
        // Self-answer: the coordinator's own custody sets are local.
        {
            let resident = self.resident.lock().unwrap();
            if resident.contains(&id) {
                if let Some(e) = reg.tasks.get_mut(&id) {
                    e.loc = 0;
                    e.loc_epoch = self.cfg.epoch;
                    e.settled = true;
                    e.lessor = None;
                }
                return;
            }
        }
        let mut awaiting = HashSet::new();
        for q in 1..self.cfg.places {
            if q == victim && self.place_epoch(q) <= victim_epoch {
                continue; // the incarnation under suspicion
            }
            if !self.peers[q as usize].alive.load(Ordering::Acquire) {
                continue;
            }
            awaiting.insert(q);
            self.send(
                q,
                Frame::TaskQuery {
                    hlc: self.hlc.tick(),
                    task: id,
                    victim,
                    victim_epoch,
                },
            );
        }
        if awaiting.is_empty() {
            self.reinject_locked(reg, id, victim);
        } else {
            reg.reclaims.insert(id, Reclaim { victim, awaiting });
        }
    }

    /// A custody poll answer arrived (or a queried place died, which
    /// counts as "no").
    fn coord_task_answer(&self, from: u32, from_epoch: u32, id: u64, have: bool) {
        let mut reg = self.coord().reg.lock().unwrap();
        if !reg.reclaims.contains_key(&id) {
            return; // poll already resolved (finish, confirm, or re-inject)
        }
        if have {
            reg.reclaims.remove(&id);
            if let Some(e) = reg.tasks.get_mut(&id) {
                if !e.done {
                    e.loc = from;
                    e.loc_epoch = from_epoch;
                    e.settled = true;
                    e.lessor = None;
                }
            }
            return;
        }
        let drained = {
            let rec = reg.reclaims.get_mut(&id).expect("checked above");
            rec.awaiting.remove(&from);
            if rec.awaiting.is_empty() {
                Some(rec.victim)
            } else {
                None
            }
        };
        if let Some(victim) = drained {
            reg.reclaims.remove(&id);
            self.reinject_locked(&mut reg, id, victim);
        }
    }

    /// Remove a dead place from every pending poll's awaiting set and
    /// re-inject the candidates whose polls that drains.
    fn poll_drop_answerer(&self, reg: &mut Registry, p: u32) {
        let mut drained = Vec::new();
        for (id, rec) in reg.reclaims.iter_mut() {
            rec.awaiting.remove(&p);
            if rec.awaiting.is_empty() {
                drained.push((*id, rec.victim));
            }
        }
        for (id, victim) in drained {
            reg.reclaims.remove(&id);
            self.reinject_locked(reg, id, victim);
        }
    }

    /// Every live place denied custody: the payload died with the
    /// victim, so deliver the registry's copy somewhere alive.
    fn reinject_locked(&self, reg: &mut Registry, id: u64, victim: u32) {
        let mut task = match reg.tasks.get(&id) {
            Some(e) if !e.done => e.task.clone().expect("pending entries keep payloads"),
            _ => return,
        };
        task.flags |= TASK_RECOVERED;
        let (to, to_epoch) = self.coord_deliver(reg, task, None);
        self.emit(
            GlobalWorkerId(victim * self.cfg.wpp),
            PlaceId(victim),
            TraceEventKind::TaskRecover {
                task: TaskId(id),
                from: PlaceId(victim),
                to: PlaceId(to),
            },
        );
        if let Some(e) = reg.tasks.get_mut(&id) {
            e.loc = to;
            e.loc_epoch = to_epoch;
            e.settled = true;
            e.lessor = None;
        }
    }

    /// A live (or revived) peer said Hello on an inbound connection.
    fn note_hello(self: &Arc<Self>, p: u32, epoch: u32) {
        if p == self.own() {
            return;
        }
        let peer = &self.peers[p as usize];
        *peer.last_heard.lock().unwrap() = Instant::now();
        let prev_epoch = peer.epoch.swap(epoch, Ordering::AcqRel);
        let was_alive = peer.alive.swap(true, Ordering::AcqRel);
        if was_alive && prev_epoch != EPOCH_UNSEEN && epoch > prev_epoch {
            // Restarted before we noticed the death: reclaim first.
            if self.is_coord() {
                self.coord_process_death(p, prev_epoch);
            }
        }
        if !was_alive || (prev_epoch != EPOCH_UNSEEN && epoch > prev_epoch) {
            // Fresh incarnation: the writer thread self-heals (its
            // next frame re-dials), so revival here is just registry
            // bookkeeping.
            if self.is_coord() {
                let removed = {
                    let mut reg = self.coord().reg.lock().unwrap();
                    reg.dead.remove(&p)
                };
                if removed {
                    let w = GlobalWorkerId(p * self.cfg.wpp);
                    self.emit(w, PlaceId(p), TraceEventKind::PlaceRestart);
                }
            }
        }
    }

    // ------------------------------------------------------ registry (coord)

    fn register_locked(&self, reg: &mut Registry, task: WireTask, loc: u32, loc_epoch: u32) {
        let id = task.id;
        reg.tasks.insert(
            id,
            Entry {
                loc,
                loc_epoch,
                settled: true,
                lessor: None,
                done: false,
                task: Some(task),
            },
        );
        reg.outstanding += 1;
        if let Some((to, to_epoch, from, from_epoch)) = reg.orphan_moved.remove(&id) {
            // Replay the early notice through the normal path so it
            // gets the same staleness checks (swept sender, swept
            // target → custody poll) as an on-time one.
            self.moved_locked(reg, id, to, to_epoch, from, from_epoch);
        }
        if let Some(result) = reg.orphan_finish.remove(&id) {
            self.finish_locked(reg, id, result);
        }
    }

    fn finish_locked(&self, reg: &mut Registry, id: u64, result: Vec<u64>) {
        match reg.tasks.get_mut(&id) {
            None => {
                reg.orphan_finish.insert(id, result);
            }
            Some(e) if e.done => {} // duplicate FinishDec: already folded
            Some(e) => {
                e.done = true;
                e.task = None;
                // A finish settles any custody doubt for good.
                reg.reclaims.remove(&id);
                if result.len() > reg.fold.len() {
                    reg.fold.resize(result.len(), 0);
                }
                for (a, b) in reg.fold.iter_mut().zip(&result) {
                    *a = a.wrapping_add(*b);
                }
                reg.folded_any = true;
                reg.outstanding -= 1;
                if reg.outstanding == 0 {
                    self.coord().latch.notify_all();
                }
            }
        }
    }

    /// Apply a `TaskMoved` sent by incarnation `(from, from_epoch)`.
    /// `from == to` is the holder *confirming* custody; `from != to`
    /// is a victim's lease — the payload is (or was) in flight from
    /// the victim to `to` and may still die with the victim.
    fn moved_locked(
        &self,
        reg: &mut Registry,
        id: u64,
        to: u32,
        to_epoch: u32,
        from: u32,
        from_epoch: u32,
    ) {
        let confirm = from == to;
        // A lease/confirm whose target incarnation was already swept
        // is stale: that incarnation's copy is gone and no future
        // sweep will reclaim it. A lease to a *later* incarnation of a
        // swept place is fine — the copy is alive at the restarted
        // process (whose revival the registry may not have processed
        // yet).
        let swept_at = reg.swept.get(&to).copied();
        let stale = to != 0 && swept_at.is_some_and(|s| lease_is_stale(to_epoch, s));
        let sender_swept = !confirm
            && reg
                .swept
                .get(&from)
                .is_some_and(|&s| lease_is_stale(from_epoch, s));
        let (cur_loc, cur_epoch, settled) = match reg.tasks.get(&id) {
            None => {
                // Orphans keep the old rule — a swept sender's lease
                // is not worth remembering, the spawn-note path polls
                // swept-spawner registrations anyway.
                if !sender_swept {
                    reg.orphan_moved
                        .insert(id, (to, to_epoch, from, from_epoch));
                }
                return;
            }
            Some(e) if e.done => return,
            Some(e) => (e.loc, e.loc_epoch, e.settled),
        };
        // A lease from an incarnation that was already swept is
        // usually moot — the sweep's custody poll took over. The
        // exception: the registry still points at the swept *sender*,
        // meaning the sweep scanned right past this entry (the lease
        // had not landed yet, so nothing pointed anywhere dead). The
        // lease is then the only record that the copy left the
        // sender; resolve by poll, fencing the dead sender (its
        // kernel-flushed payload may still reach the target).
        if sender_swept {
            if cur_loc == from && cur_epoch <= from_epoch {
                self.poll_custody_locked(reg, id, from, from_epoch);
            }
            return;
        }
        if !stale {
            // Never downgrade a holder's own confirmation to a lease:
            // the confirm can overtake the victim's lease (different
            // connections), and the settled bit is what exempts the
            // entry from custody polls.
            if !confirm && settled && cur_loc == to && cur_epoch == to_epoch {
                return;
            }
            if let Some(e) = reg.tasks.get_mut(&id) {
                e.loc = to;
                e.loc_epoch = to_epoch;
                e.settled = confirm;
                e.lessor = if confirm {
                    None
                } else {
                    Some((from, from_epoch))
                };
            }
            if confirm {
                // The holder spoke for itself: any custody poll for
                // this task is answered.
                reg.reclaims.remove(&id);
            }
            return;
        }
        // Stale target. Reclaim via a custody poll, not a blind
        // re-inject (the copy may have escaped to a live thief whose
        // own notice simply has not landed yet) — but only when this
        // lease is the freshest custody news we have:
        //
        // * the registry still points at the swept incarnation
        //   (`cur_loc == to`) — the death sweep raced this lease and
        //   already resolved it, unless the epochs say otherwise; or
        // * the registry still points at the lease *sender*
        //   (`cur_loc == from`) — the victim's lease outran the sweep
        //   of the dead thief entirely: the sweep scanned `loc == to`
        //   entries while this one still read `loc == from`, so
        //   nobody reclaimed it and the victim no longer has it. This
        //   is the late-lease stall: spawner's lease queued behind a
        //   busy connection arrives after the thief was swept.
        //
        // Any other `cur_loc` means a newer confirm/lease re-homed
        // the task already; re-polling would risk running it twice.
        let still_at_dead_target =
            cur_loc == to && swept_at.is_some_and(|s| lease_is_stale(cur_epoch, s));
        let still_at_lessor = !confirm && cur_loc == from && cur_epoch <= from_epoch;
        if !still_at_dead_target && !still_at_lessor {
            return;
        }
        self.poll_custody_locked(reg, id, to, to_epoch);
    }

    /// Deliver a task to a place: `preferred` first, else round-robin
    /// over alive places; place 0 (us) is the always-works fallback.
    /// Returns the place that actually took it and that place's
    /// current epoch (the lease stamp the caller must record).
    fn coord_deliver(
        &self,
        reg: &mut Registry,
        task: WireTask,
        preferred: Option<u32>,
    ) -> (u32, u32) {
        let mut candidates = Vec::new();
        if let Some(p) = preferred {
            candidates.push(p);
        }
        for i in 0..self.cfg.places {
            reg.route_rr = (reg.route_rr + 1) % self.cfg.places;
            let _ = i;
            candidates.push(reg.route_rr);
        }
        candidates.push(0);
        for to in candidates {
            if to != 0
                && (reg.dead.contains(&to)
                    || !self.peers[to as usize].alive.load(Ordering::Acquire))
            {
                continue;
            }
            if to == 0 {
                self.accept_migrated(vec![task]);
                return (0, self.cfg.epoch);
            }
            let frame = Frame::TaskMigrate {
                hlc: self.hlc.tick(),
                from_place: self.own(),
                tasks: vec![task],
            };
            // Queue-and-forget: if the peer dies before the writer
            // delivers this, the death sweep reclaims the lease
            // (loc is recorded by our caller under the same lock).
            self.send(to, frame);
            return (to, self.place_epoch(to));
        }
        // Unreachable: to == 0 always succeeds.
        (0, self.cfg.epoch)
    }

    /// Coordinator-side SpawnNote handling (also called locally by
    /// place-0 workers). `from` is the spawning place, `from_epoch`
    /// the incarnation the note came from (the reader's connection
    /// epoch — not the peer's current epoch, which may already belong
    /// to a restarted process while old frames drain).
    fn coord_spawn_note(&self, from: u32, from_epoch: u32, tasks: Vec<WireTask>) {
        let mut reg = self.coord().reg.lock().unwrap();
        for t in tasks {
            let routed = t.flags & TASK_RECOVERED != 0;
            let known = reg.tasks.get(&t.id).map(|e| (e.done, e.loc, e.loc_epoch));
            // `swept_of(p, e)` below: incarnation `e` of place `p` has
            // already been (or is being) reclaimed — copies there are
            // gone.
            let from_swept = reg
                .swept
                .get(&from)
                .is_some_and(|&s| lease_is_stale(from_epoch, s));
            match known {
                None => {
                    let id = t.id;
                    let mut fresh = t;
                    fresh.flags &= !TASK_RECOVERED;
                    if !routed {
                        if from_swept {
                            // The spawner's incarnation was already
                            // swept: its enqueued copy died with it —
                            // unless a thief got it first. Register
                            // (which replays any orphaned TaskMoved/
                            // FinishDec), then resolve what is still
                            // pending at the swept incarnation with a
                            // custody poll instead of blindly
                            // delivering a second copy.
                            self.register_locked(&mut reg, fresh, from, from_epoch);
                            let pending_at_swept = reg.tasks.get(&id).is_some_and(|e| {
                                !e.done
                                    && reg
                                        .swept
                                        .get(&e.loc)
                                        .is_some_and(|&s| lease_is_stale(e.loc_epoch, s))
                            });
                            if pending_at_swept {
                                self.poll_custody_locked(&mut reg, id, from, from_epoch);
                            }
                        } else {
                            // Normal spawn: already enqueued at `from`.
                            self.register_locked(&mut reg, fresh, from, from_epoch);
                        }
                    } else if reg.orphan_finish.contains_key(&id) {
                        // Child of a recovered task, but an orphaned
                        // FinishDec proves the first copy already ran
                        // somewhere live (its SpawnNote died in the
                        // crashed place's outbox). Register without
                        // delivering a second copy; `register_locked`
                        // folds the orphaned result.
                        self.register_locked(&mut reg, fresh, from, from_epoch);
                    } else if let Some(&(loc, le, _, _)) = reg.orphan_moved.get(&id) {
                        let holder_swept =
                            loc != 0 && reg.swept.get(&loc).is_some_and(|&s| lease_is_stale(le, s));
                        if holder_swept {
                            // A thief held the first copy but its
                            // incarnation was swept: deliver fresh.
                            reg.orphan_moved.remove(&id);
                            let (to, ep) = self.coord_deliver(&mut reg, fresh.clone(), None);
                            self.register_locked(&mut reg, fresh, to, ep);
                        } else {
                            // An orphaned TaskMoved shows a live (or
                            // not-yet-swept, in which case the sweep
                            // reclaims the lease) place already holds
                            // the stolen first copy — delivering
                            // another would execute twice.
                            self.register_locked(&mut reg, fresh, loc, le);
                        }
                    } else {
                        // Child of a recovered task: nothing is
                        // enqueued anywhere; route it (back to the
                        // spawner when possible).
                        let pref = if from_swept { None } else { Some(from) };
                        let (to, ep) = self.coord_deliver(&mut reg, fresh.clone(), pref);
                        self.register_locked(&mut reg, fresh, to, ep);
                    }
                }
                Some((true, _, _)) => {} // already done: drop
                Some((false, loc, le)) if reg.swept.get(&loc).is_none_or(|&s| le > s) => {} // copy alive
                Some((false, loc, le)) => {
                    // Known, pending, held by a swept incarnation:
                    // open a custody poll (same as the sweep would —
                    // this covers respawns that arrive after the
                    // grace scan ran).
                    self.poll_custody_locked(&mut reg, t.id, loc, le);
                }
            }
        }
    }

    // ---------------------------------------------------- frames to coord

    fn to_coord_spawn(&self, tasks: Vec<WireTask>) {
        if self.is_coord() {
            self.coord_spawn_note(0, self.cfg.epoch, tasks);
        } else {
            self.send(
                0,
                Frame::SpawnNote {
                    hlc: self.hlc.tick(),
                    tasks,
                },
            );
        }
    }

    fn to_coord_finish(&self, id: u64, result: Vec<u64>) {
        if self.is_coord() {
            let mut reg = self.coord().reg.lock().unwrap();
            self.finish_locked(&mut reg, id, result);
        } else {
            self.send(
                0,
                Frame::FinishDec {
                    hlc: self.hlc.tick(),
                    task: id,
                    result,
                },
            );
        }
    }

    fn to_coord_moved(&self, id: u64, to: u32, to_epoch: u32) {
        if self.is_coord() {
            let mut reg = self.coord().reg.lock().unwrap();
            self.moved_locked(&mut reg, id, to, to_epoch, self.own(), self.cfg.epoch);
        } else {
            self.send(
                0,
                Frame::TaskMoved {
                    hlc: self.hlc.tick(),
                    task: id,
                    to,
                    to_epoch,
                },
            );
        }
    }

    /// Answer a coordinator custody poll. "Have" means queued or
    /// executing here (`resident`), or finished here (the `FinishDec`
    /// left on this same connection earlier, so the coordinator
    /// learns of the finish before this answer either way). Answering
    /// "no" *disowns* the task against the victim incarnation: a
    /// `StealReply` from it that drains later is dropped, so the
    /// answer cannot be invalidated after the fact.
    fn answer_task_query(&self, id: u64, victim: u32, victim_epoch: u32) {
        let have = {
            let resident = self.resident.lock().unwrap();
            let done = self.done.lock().unwrap();
            if resident.contains(&id) || done.contains(&id) {
                true
            } else {
                self.disowned
                    .lock()
                    .unwrap()
                    .insert(id, (victim, victim_epoch));
                false
            }
        };
        self.send(
            0,
            Frame::TaskAnswer {
                hlc: self.hlc.tick(),
                task: id,
                have,
            },
        );
    }

    // ------------------------------------------------------- task intake

    /// Accept tasks pushed here by `TaskMigrate`: dedup against
    /// resident and finished ids (a doctored duplicate frame or a
    /// recovery race must not double-enqueue), then inbox them.
    fn accept_migrated(&self, tasks: Vec<WireTask>) {
        for t in tasks {
            {
                let resident = self.resident.lock().unwrap();
                let done = self.done.lock().unwrap();
                if resident.contains(&t.id) || done.contains(&t.id) {
                    continue;
                }
            }
            self.resident.lock().unwrap().insert(t.id);
            self.inbox.push(t);
        }
    }

    // --------------------------------------------------------- frame input

    /// `from_epoch` is the incarnation of `from` that the carrying
    /// connection belongs to (its Hello epoch) — frames buffered from
    /// a dead incarnation must not be attributed to its successor.
    fn handle_frame(self: &Arc<Self>, from: u32, from_epoch: u32, frame: Frame) {
        self.hlc.observe(frame.hlc());
        if from != self.own() {
            *self.peers[from as usize].last_heard.lock().unwrap() = Instant::now();
        }
        match frame {
            Frame::Hello { place, epoch, .. } => self.note_hello(place, epoch),
            Frame::StealProbe {
                probe_id,
                thief_place,
                chunk,
                ..
            } => self.handle_steal_probe(probe_id, thief_place, from_epoch, chunk as usize),
            Frame::StealReply {
                probe_id, tasks, ..
            } => self.handle_steal_reply(from, from_epoch, probe_id, tasks),
            Frame::TaskMigrate { tasks, .. } => self.accept_migrated(tasks),
            Frame::SpawnNote { tasks, .. } => {
                if self.is_coord() {
                    self.coord_spawn_note(from, from_epoch, tasks);
                }
            }
            Frame::FinishDec { task, result, .. } => {
                if self.is_coord() {
                    let mut reg = self.coord().reg.lock().unwrap();
                    self.finish_locked(&mut reg, task, result);
                }
            }
            Frame::TaskMoved {
                task, to, to_epoch, ..
            } => {
                if self.is_coord() {
                    let mut reg = self.coord().reg.lock().unwrap();
                    self.moved_locked(&mut reg, task, to, to_epoch, from, from_epoch);
                }
            }
            Frame::TaskQuery {
                task,
                victim,
                victim_epoch,
                ..
            } => self.answer_task_query(task, victim, victim_epoch),
            Frame::TaskAnswer { task, have, .. } => {
                if self.is_coord() {
                    self.coord_task_answer(from, from_epoch, task, have);
                }
            }
            Frame::Heartbeat {
                busy, shared_len, ..
            } => {
                if from != self.own() {
                    let peer = &self.peers[from as usize];
                    if peer.alive.load(Ordering::Acquire) {
                        let prev = peer.last_busy.swap(busy, Ordering::AcqRel);
                        for _ in prev..busy {
                            self.board.worker_busy(PlaceId(from));
                        }
                        for _ in busy..prev {
                            self.board.worker_idle(PlaceId(from));
                        }
                        self.board
                            .set_shared_len(PlaceId(from), shared_len as usize);
                    }
                }
            }
            Frame::Shutdown { places_failed, .. } => {
                self.shutdown_failed.store(places_failed, Ordering::Release);
                self.shutdown.store(true, Ordering::Release);
            }
        }
    }

    /// Victim side of a distributed steal: pop up to `chunk`
    /// migratable tasks from the shared deque and reply.
    /// `thief_epoch` is the probing connection's incarnation — it
    /// stamps the lease so the coordinator can tell whether the
    /// hand-off was to an incarnation it has since swept.
    fn handle_steal_probe(&self, probe_id: u64, thief_place: u32, thief_epoch: u32, chunk: usize) {
        let mut grabbed = self.shared.take_chunk(chunk.max(1));
        // Locality-sensitive tasks never migrate; put them back.
        let migratable = {
            let policy = self.policy.lock().unwrap();
            let (mig, stay): (Vec<_>, Vec<_>) = grabbed
                .drain(..)
                .partition(|t| policy.may_migrate(locality_from_wire(t.locality)));
            for t in stay {
                self.shared.push(t);
            }
            mig
        };
        {
            let mut resident = self.resident.lock().unwrap();
            for t in &migratable {
                resident.remove(&t.id);
            }
        }
        self.board
            .set_shared_len(self.own_place(), self.shared.len());
        // Lease the tasks to the thief *before* handing them over: if
        // the thief dies with the reply in flight, the registry sweep
        // still finds loc == thief and reclaims them. The thief's own
        // TaskMoved notice is an idempotent duplicate of this one.
        for t in &migratable {
            self.to_coord_moved(t.id, thief_place, thief_epoch);
        }
        // Queue-and-forget: if the thief dies before the reply lands,
        // the lease above (loc == thief) lets the death sweep reclaim
        // every task in it — no victim-side fallback needed.
        self.send(
            thief_place,
            Frame::StealReply {
                hlc: self.hlc.tick(),
                probe_id,
                tasks: migratable,
            },
        );
    }

    /// Thief side: vet a reply's tasks and take custody of the
    /// survivors *in the reader thread* — before any worker can see
    /// them — then route them to the waiting probe, or salvage them
    /// into the shared deque if the probe already timed out.
    ///
    /// Vetting drops tasks this place disowned in a custody poll
    /// against the sender's incarnation (the late payload the "no"
    /// answer promised to refuse) and tasks already resident or
    /// finished here. Taking custody means inserting into `resident`
    /// and queueing the confirming `TaskMoved` now: a custody poll
    /// arriving one instant later must see the task as held, not
    /// catch it in limbo between the reader and a worker.
    fn handle_steal_reply(
        &self,
        victim: u32,
        victim_epoch: u32,
        probe_id: u64,
        tasks: Vec<WireTask>,
    ) {
        let tasks = {
            let mut resident = self.resident.lock().unwrap();
            let done = self.done.lock().unwrap();
            let disowned = self.disowned.lock().unwrap();
            let kept: Vec<WireTask> = tasks
                .into_iter()
                .filter(|t| {
                    if resident.contains(&t.id) || done.contains(&t.id) {
                        return false;
                    }
                    !disowned
                        .get(&t.id)
                        .is_some_and(|&(v, ve)| v == victim && victim_epoch <= ve)
                })
                .collect();
            for t in &kept {
                resident.insert(t.id);
            }
            kept
        };
        for t in &tasks {
            self.to_coord_moved(t.id, self.own(), self.cfg.epoch);
        }
        if self.probes.fill(probe_id, tasks.clone()) {
            return;
        }
        if tasks.is_empty() {
            return;
        }
        let w = GlobalWorkerId(self.own() * self.cfg.wpp);
        let kinds: Vec<TraceEventKind> = tasks
            .iter()
            .map(|t| TraceEventKind::Migration {
                task: TaskId(t.id),
                from: PlaceId(victim),
                to: self.own_place(),
            })
            .collect();
        self.emit_batch(w, self.own_place(), &kinds);
        for t in tasks {
            self.shared.push(t);
        }
        self.board
            .set_shared_len(self.own_place(), self.shared.len());
    }
}

// ---------------------------------------------------------------- workers

struct WorkerCtx {
    node: Arc<Node>,
    gw: GlobalWorkerId,
    deque: PrivateDeque<WireTask>,
    /// Co-workers' private deques (index == local worker, own slot
    /// unused).
    stealers: Vec<Stealer<WireTask>>,
    wx: usize,
    policy: Box<dyn Policy>,
    rng: SplitMix64,
    retry: WallRetry,
}

impl WorkerCtx {
    fn place(&self) -> PlaceId {
        self.node.own_place()
    }

    fn run(&mut self) {
        let mut gate = IdleGate::default();
        let mut idle_since = Instant::now();
        while !self.node.shutdown.load(Ordering::Acquire) {
            match self.acquire(idle_since) {
                Some(task) => {
                    if gate.note_work().is_some() {
                        self.node
                            .emit(self.gw, self.place(), TraceEventKind::Wakeup);
                    }
                    self.execute(task);
                    idle_since = Instant::now();
                }
                None => match gate.note_idle() {
                    IdleAction::Yield => thread::yield_now(),
                    IdleAction::Park { newly_dormant } => {
                        if newly_dormant {
                            self.node
                                .emit(self.gw, self.place(), TraceEventKind::Dormant);
                        }
                        gate.nap();
                    }
                },
            }
        }
    }

    /// One steal round: execute the policy's step sequence verbatim
    /// (the conformance checker replays it against Algorithm 1).
    fn acquire(&mut self, idle_since: Instant) -> Option<WireTask> {
        let node = Arc::clone(&self.node);
        let steps = self
            .policy
            .steal_sequence(self.gw, &node.board, &mut self.rng);
        let mut found = None;
        for step in steps {
            match step {
                StealStep::PollPrivate => {
                    if let Some(t) = self.deque.pop() {
                        found = Some(t);
                    }
                    node.board.set_private_len(self.gw, self.deque.len());
                }
                StealStep::ProbeNetwork => {
                    node.emit(self.gw, self.place(), TraceEventKind::NetProbe);
                    if let Some(t) = node.inbox.take() {
                        found = Some(t);
                    }
                }
                StealStep::StealCoWorker => {
                    node.emit(
                        self.gw,
                        self.place(),
                        TraceEventKind::StealAttempt {
                            tier: StealTier::LocalPrivate,
                        },
                    );
                    let n = self.stealers.len();
                    let start = self.rng.below_usize(n.max(1));
                    for k in 0..n {
                        let j = (start + k) % n;
                        if j == self.wx {
                            continue;
                        }
                        if let Some(t) = self.stealers[j].steal_with_retries(2) {
                            self.emit_success(
                                StealTier::LocalPrivate,
                                t.id,
                                self.node.own(),
                                idle_since,
                            );
                            found = Some(t);
                            break;
                        }
                    }
                }
                StealStep::StealLocalShared => {
                    node.emit(
                        self.gw,
                        self.place(),
                        TraceEventKind::StealAttempt {
                            tier: StealTier::LocalShared,
                        },
                    );
                    if let Some(t) = node.shared.take() {
                        node.board.set_shared_len(self.place(), node.shared.len());
                        self.emit_success(
                            StealTier::LocalShared,
                            t.id,
                            self.node.own(),
                            idle_since,
                        );
                        found = Some(t);
                    }
                }
                StealStep::StealRemoteShared(victim) => {
                    node.emit(
                        self.gw,
                        self.place(),
                        TraceEventKind::StealAttempt {
                            tier: StealTier::Remote,
                        },
                    );
                    if let Some(t) = self.remote_steal(victim, idle_since) {
                        found = Some(t);
                    }
                }
                StealStep::Quiesce => break,
            }
            if found.is_some() {
                break;
            }
        }
        let got = found.is_some();
        self.policy.note_result(self.gw, got);
        found
    }

    fn emit_success(&self, tier: StealTier, task: u64, victim: u32, idle_since: Instant) {
        self.node.emit(
            self.gw,
            self.place(),
            TraceEventKind::StealSuccess {
                tier,
                task: TaskId(task),
                victim: PlaceId(victim),
                latency_ns: idle_since.elapsed().as_nanos() as u64,
            },
        );
    }

    /// The distributed steal protocol: probe, wait on the wall-clock
    /// timeout, back off and retry within the budget, emitting
    /// `steal_timeout` per expired attempt.
    fn remote_steal(&mut self, victim: PlaceId, idle_since: Instant) -> Option<WireTask> {
        let node = Arc::clone(&self.node);
        let v = victim.0;
        if v == node.own() || !node.peers[v as usize].alive.load(Ordering::Acquire) {
            return None;
        }
        let chunk = self.policy.remote_chunk() as u32;
        let mut attempt: u32 = 1;
        loop {
            let probe_id = node.probe_seq.fetch_add(1, Ordering::Relaxed);
            node.probes.register(probe_id);
            let frame = Frame::StealProbe {
                hlc: node.hlc.tick(),
                probe_id,
                thief_place: node.own(),
                thief_worker: self.wx as u32,
                chunk,
            };
            node.send(v, frame);
            let reply = node.probes.wait(probe_id, self.retry.timeout());
            match reply {
                Some(tasks) if !tasks.is_empty() => {
                    return Some(self.accept_stolen(v, tasks, idle_since))
                }
                Some(_) => return None, // victim answered empty-handed
                None => {
                    node.emit(
                        self.gw,
                        self.place(),
                        TraceEventKind::StealTimeout { victim, attempt },
                    );
                    if attempt > self.retry.budget() {
                        return None;
                    }
                    thread::sleep(self.retry.backoff(attempt, &mut self.rng));
                    attempt += 1;
                }
            }
        }
    }

    /// A remote steal landed: one shared HLC tick stamps the
    /// `steal_success` and every `migration` line (the conformance
    /// checker counts same-stamp migrations against the chunk bound),
    /// the first task executes here, the rest feed the private deque.
    fn accept_stolen(
        &mut self,
        victim: u32,
        tasks: Vec<WireTask>,
        idle_since: Instant,
    ) -> WireTask {
        let node = &self.node;
        let mut kinds = vec![TraceEventKind::StealSuccess {
            tier: StealTier::Remote,
            task: TaskId(tasks[0].id),
            victim: PlaceId(victim),
            latency_ns: idle_since.elapsed().as_nanos() as u64,
        }];
        for t in &tasks {
            kinds.push(TraceEventKind::Migration {
                task: TaskId(t.id),
                from: PlaceId(victim),
                to: self.place(),
            });
        }
        node.emit_batch(self.gw, self.place(), &kinds);
        // Residency and the confirming TaskMoved were handled by the
        // reader thread before the probe was filled.
        let mut iter = tasks.into_iter();
        let first = iter.next().expect("non-empty");
        for t in iter {
            self.deque.push(t);
        }
        node.board.set_private_len(self.gw, self.deque.len());
        first
    }

    /// Run one task: trace start, execute, register + enqueue
    /// children, trace end, then notify the coordinator. Trace lines
    /// are flushed before the socket writes they precede.
    fn execute(&mut self, task: WireTask) {
        let node = Arc::clone(&self.node);
        node.board.worker_busy(self.place());
        node.emit(
            self.gw,
            self.place(),
            TraceEventKind::TaskStart {
                task: TaskId(task.id),
            },
        );
        let mut scope = Collect(Vec::new());
        let contrib = node.app.execute(&task, &mut scope);
        let recovered = task.flags & TASK_RECOVERED != 0;
        if !scope.0.is_empty() {
            let children: Vec<WireTask> = scope
                .0
                .drain(..)
                .enumerate()
                .map(|(i, (loc, kind, est, payload))| WireTask {
                    id: mix64(task.id ^ (i as u64 + 1)),
                    home: node.own(),
                    locality: locality_to_wire(loc),
                    flags: if recovered { TASK_RECOVERED } else { 0 },
                    kind,
                    est,
                    payload,
                })
                .collect();
            for c in &children {
                node.emit(
                    self.gw,
                    self.place(),
                    TraceEventKind::Spawn { task: TaskId(c.id) },
                );
            }
            node.to_coord_spawn(children.clone());
            if !recovered {
                // Normal path: children run here unless stolen. A
                // recovered task's children are routed by the
                // registry instead (they may be alive or done
                // elsewhere from the pre-crash execution).
                for c in children {
                    self.enqueue_local(c);
                }
            }
        }
        node.emit(
            self.gw,
            self.place(),
            TraceEventKind::TaskEnd {
                task: TaskId(task.id),
            },
        );
        node.to_coord_finish(task.id, contrib);
        // A task stays resident while executing: a custody poll must
        // count it as held. It leaves residency only here, after the
        // FinishDec is queued, so a "no" answer always trails the
        // finish on the coordinator connection.
        {
            let mut resident = node.resident.lock().unwrap();
            let mut done = node.done.lock().unwrap();
            done.insert(task.id);
            resident.remove(&task.id);
        }
        node.board.worker_idle(self.place());
    }

    fn enqueue_local(&mut self, c: WireTask) {
        let node = Arc::clone(&self.node);
        let meta = TaskMeta {
            home: self.place(),
            locality: locality_from_wire(c.locality),
            spawned_at: self.place(),
            est_cost_ns: c.est,
            footprint_bytes: (c.payload.len() * 8) as u64,
        };
        let choice = self.policy.map_task(&meta, &node.board, &mut self.rng);
        node.resident.lock().unwrap().insert(c.id);
        match choice {
            DequeChoice::Private => {
                self.deque.push(c);
                node.board.set_private_len(self.gw, self.deque.len());
            }
            DequeChoice::Shared => {
                node.shared.push(c);
                node.board.set_shared_len(self.place(), node.shared.len());
            }
        }
    }
}

// ---------------------------------------------------------------- run loops

fn spawn_reader(node: Arc<Node>, mut conn: Conn) {
    thread::spawn(move || {
        let first = match Frame::read_from(&mut conn) {
            Ok(Some(f)) => f,
            _ => return,
        };
        if first.check_hello().is_err() {
            return;
        }
        let (peer, epoch) = match first {
            Frame::Hello { place, epoch, .. } => (place, epoch),
            _ => unreachable!("check_hello passed"),
        };
        node.hlc.observe(first.hlc());
        node.handle_frame(peer, epoch, first);
        while let Ok(Some(frame)) = Frame::read_from(&mut conn) {
            node.handle_frame(peer, epoch, frame);
        }
        // EOF after draining: the peer's process is gone (or it
        // re-dialed). Only treat it as a death if no newer
        // incarnation said Hello since.
        if node.peers[peer as usize].epoch.load(Ordering::Acquire) == epoch {
            node.note_possible_death(peer);
            if node.is_coord() {
                node.death_queue.lock().unwrap().retain(|&(x, _)| x != peer);
                node.coord_process_death(peer, epoch);
            }
        }
    });
}

fn spawn_accept_loop(node: Arc<Node>, listener: Listener) {
    thread::spawn(move || loop {
        match listener.accept() {
            Ok(conn) => spawn_reader(Arc::clone(&node), conn),
            Err(_) => {
                if node.shutdown.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    });
}

fn spawn_heartbeat(node: Arc<Node>) {
    thread::spawn(move || {
        let period = Duration::from_millis(node.cfg.hb_ms);
        let detect = Duration::from_millis(node.cfg.detect_ms);
        while !node.shutdown.load(Ordering::Acquire) {
            // Process queued deaths (coordinator reclaims leases).
            let dead: Vec<(u32, u32)> = std::mem::take(&mut *node.death_queue.lock().unwrap());
            for (p, dying) in dead {
                if node.is_coord() {
                    node.coord_process_death(p, dying);
                }
            }
            // Silence-based detection (backup to connection EOF).
            for p in 0..node.cfg.places {
                if p == node.own() || p == 0 {
                    continue;
                }
                let peer = &node.peers[p as usize];
                if peer.alive.load(Ordering::Acquire)
                    && peer.epoch.load(Ordering::Acquire) != EPOCH_UNSEEN
                    && peer.last_heard.lock().unwrap().elapsed() > detect
                {
                    node.note_possible_death(p);
                }
            }
            // Beacon our load to everyone alive.
            let hb = Frame::Heartbeat {
                hlc: node.hlc.tick(),
                busy: node.board.busy_workers(node.own_place()),
                shared_len: node.shared.len() as u32,
            };
            for p in 0..node.cfg.places {
                if p == node.own() || !node.peers[p as usize].alive.load(Ordering::Acquire) {
                    continue;
                }
                // Don't pile beacons up behind a stalled writer.
                if node.outbox_len(p) > 64 {
                    continue;
                }
                node.send(p, hb.clone());
            }
            thread::sleep(period);
        }
    });
}

/// Dedicated writer thread for one peer: drains the outbox over the
/// socket, dialing lazily (Hello first) and backing off through the
/// peer's [`Reconnector`] on failure. Coordinator-bound frames retry
/// until shutdown (place 0 is never killed); for anyone else an
/// exhausted budget degrades the peer to dead and drops its queue —
/// the coordinator's lease sweep recovers any task that mattered.
fn spawn_writer(node: Arc<Node>, p: u32) {
    thread::spawn(move || {
        let mut conn: Option<Conn> = None;
        let mut reconnect = Reconnector::new(
            reconnect_defaults(),
            node.cfg.seed ^ mix64(u64::from(node.cfg.place) << 32 | u64::from(p)),
        );
        'frames: loop {
            let frame = {
                let peer = &node.peers[p as usize];
                let mut q = peer.outbox.lock().unwrap();
                loop {
                    if let Some(f) = q.pop_front() {
                        break f;
                    }
                    if node.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let (guard, _) = peer
                        .outbox_cv
                        .wait_timeout(q, Duration::from_millis(50))
                        .unwrap();
                    q = guard;
                }
            };
            loop {
                // A frame addressed to a peer since declared dead must
                // not survive into its next incarnation.
                if p != 0 && !node.peers[p as usize].alive.load(Ordering::Acquire) {
                    conn = None;
                    reconnect.reset();
                    continue 'frames;
                }
                if conn.is_none() {
                    if let Ok(mut c) = node.dial(p) {
                        if node.hello().write_to(&mut c).is_ok() {
                            conn = Some(c);
                            reconnect.reset();
                        }
                    }
                }
                let sent = match conn.as_mut() {
                    Some(c) => frame.write_to(c).is_ok(),
                    None => false,
                };
                if sent {
                    continue 'frames;
                }
                conn = None;
                match reconnect.next_delay() {
                    Some(d) => {
                        if node.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        thread::sleep(d);
                    }
                    None if p == 0 => {
                        // The coordinator is never declared dead; its
                        // true silence means the run is over anyway.
                        reconnect.reset();
                        if node.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                    }
                    None => {
                        node.note_possible_death(p);
                        node.peers[p as usize].outbox.lock().unwrap().clear();
                        reconnect.reset();
                        continue 'frames; // this frame is dropped too
                    }
                }
            }
        }
    });
}

impl Node {
    fn new(cfg: PlaceConfig) -> io::Result<(Arc<Node>, Listener)> {
        fs::create_dir_all(&cfg.dir)?;
        if let Some(parent) = cfg.trace_path.parent() {
            fs::create_dir_all(parent)?;
        }
        let trace = File::create(&cfg.trace_path)?;
        let listener = match cfg.transport {
            Transport::Unix => {
                let path = sock_path(&cfg.dir, cfg.place);
                let _ = fs::remove_file(&path); // stale socket from a killed incarnation
                Listener::Unix(UnixListener::bind(&path)?)
            }
            Transport::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = l.local_addr()?;
                let tmp = addr_path(&cfg.dir, cfg.place).with_extension("tmp");
                fs::write(&tmp, addr.to_string())?;
                fs::rename(&tmp, addr_path(&cfg.dir, cfg.place))?;
                Listener::Tcp(l)
            }
        };
        let app = app_by_name(&cfg.app, cfg.seed)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unknown app"))?;
        let policy = policy_by_name(&cfg.policy)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unknown policy"))?;
        let cluster = ClusterConfig::new(cfg.places, cfg.wpp);
        let peers = (0..cfg.places)
            .map(|_| Peer {
                outbox: Mutex::new(std::collections::VecDeque::new()),
                outbox_cv: Condvar::new(),
                alive: AtomicBool::new(true),
                epoch: AtomicU32::new(EPOCH_UNSEEN),
                last_heard: Mutex::new(Instant::now()),
                last_busy: AtomicU32::new(0),
            })
            .collect();
        let coord = if cfg.place == 0 {
            Some(Coord {
                reg: Mutex::new(Registry::default()),
                latch: Condvar::new(),
            })
        } else {
            None
        };
        let node = Arc::new(Node {
            board: SharedBoard::new(cluster),
            cluster: ClusterConfig::new(cfg.places, cfg.wpp),
            cfg,
            hlc: Hlc::new(),
            trace: Mutex::new(trace),
            shared: SharedFifo::new(),
            inbox: SharedFifo::new(),
            peers,
            probes: ProbeTable::new(),
            probe_seq: AtomicU64::new(1),
            app,
            policy: Mutex::new(policy),
            resident: Mutex::new(HashSet::new()),
            done: Mutex::new(HashSet::new()),
            disowned: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            shutdown_failed: AtomicU32::new(0),
            death_queue: Mutex::new(Vec::new()),
            coord,
        });
        Ok((node, listener))
    }

    /// Coordinator: wait until every place has dialed in (or the
    /// deadline passes — the run then degrades to whoever showed up).
    fn wait_for_cluster(&self) {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let seen = (1..self.cfg.places)
                .filter(|&p| self.peers[p as usize].epoch.load(Ordering::Acquire) != EPOCH_UNSEEN)
                .count() as u32;
            if seen + 1 >= self.cfg.places || Instant::now() >= deadline {
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    fn run_coordinator(self: &Arc<Self>) -> i32 {
        self.wait_for_cluster();
        let w0 = GlobalWorkerId(0);
        let mut prev: Option<Vec<u64>> = None;
        let mut round: u32 = 0;
        let mut error: Option<String> = None;
        while let Some(roots) = self.app.roots(round, prev.as_deref()) {
            {
                let mut reg = self.coord().reg.lock().unwrap();
                reg.fold = Vec::new();
                reg.folded_any = false;
                for (i, spec) in roots.into_iter().enumerate() {
                    let id = mix64((u64::from(round)) << 32 | i as u64);
                    let task = WireTask {
                        id,
                        home: 0,
                        locality: locality_to_wire(spec.locality),
                        flags: 0,
                        kind: spec.kind,
                        est: spec.est,
                        payload: spec.payload,
                    };
                    self.emit(w0, PlaceId(0), TraceEventKind::Spawn { task: TaskId(id) });
                    let (to, ep) = self.coord_deliver(&mut reg, task.clone(), None);
                    self.register_locked(&mut reg, task, to, ep);
                }
            }
            // Wait for the round to drain, with a watchdog.
            let deadline = Instant::now() + Duration::from_millis(self.cfg.round_timeout_ms);
            let mut reg = self.coord().reg.lock().unwrap();
            while reg.outstanding > 0 {
                let now = Instant::now();
                if now >= deadline {
                    error = Some(format!(
                        "round {round} stalled: {} tasks outstanding",
                        reg.outstanding
                    ));
                    break;
                }
                let (guard, _) = self
                    .coord()
                    .latch
                    .wait_timeout(reg, (deadline - now).min(Duration::from_millis(50)))
                    .unwrap();
                reg = guard;
            }
            if error.is_some() {
                drop(reg);
                break;
            }
            prev = Some(std::mem::take(&mut reg.fold));
            drop(reg);
            round += 1;
        }
        let validation = match (&error, &prev) {
            (Some(_), _) => Err("deadline".to_string()),
            (None, Some(result)) => self.app.validate(result),
            (None, None) => Err("no rounds ran".to_string()),
        };
        let (places_failed, ever_failed) = {
            let reg = self.coord().reg.lock().unwrap();
            let mut ever: Vec<u32> = reg.ever_failed.iter().copied().collect();
            ever.sort_unstable();
            (reg.dead.len() as u32, ever)
        };
        let bye = Frame::Shutdown {
            hlc: self.hlc.tick(),
            places_failed,
        };
        for p in 1..self.cfg.places {
            self.send(p, bye.clone());
        }
        self.shutdown.store(true, Ordering::Release);
        // Writers exit once shutdown is set and their queue is empty;
        // give them a bounded window to flush the Shutdown frames so
        // followers exit promptly rather than on their own watchdog.
        let flush_deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < flush_deadline {
            let pending = (1..self.cfg.places).any(|p| self.outbox_len(p) > 0);
            if !pending {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        thread::sleep(Duration::from_millis(20));
        let result_ok = error.is_none() && validation.is_ok();
        if let Some(path) = &self.cfg.report_path {
            let mut o = Value::object();
            o.set("app", self.app.name());
            o.set("policy", self.cfg.policy.as_str());
            o.set("places", u64::from(self.cfg.places));
            o.set("workers_per_place", u64::from(self.cfg.wpp));
            o.set("rounds", u64::from(round));
            o.set("places_failed", u64::from(places_failed));
            o.set(
                "ever_failed",
                ever_failed
                    .iter()
                    .map(|&p| u64::from(p))
                    .collect::<Vec<_>>(),
            );
            o.set("result_ok", result_ok);
            if let Some(e) = error
                .as_deref()
                .or(validation.as_ref().err().map(|s| s.as_str()))
            {
                o.set("error", e);
            }
            let _ = fs::write(path, o.render_pretty());
        }
        if error.is_some() {
            EXIT_DEADLINE
        } else if result_ok {
            0
        } else {
            EXIT_BAD_RESULT
        }
    }

    fn run_follower(&self) -> i32 {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.run_deadline_ms);
        while !self.shutdown.load(Ordering::Acquire) {
            if Instant::now() >= deadline {
                self.shutdown.store(true, Ordering::Release);
                return EXIT_DEADLINE;
            }
            thread::sleep(Duration::from_millis(5));
        }
        0
    }
}

/// Run one place to completion. Returns the process exit code: 0 on a
/// clean validated run, [`EXIT_BAD_RESULT`] if the coordinator's fold
/// failed validation, [`EXIT_DEADLINE`] if a watchdog fired.
pub fn run_place(cfg: PlaceConfig) -> io::Result<i32> {
    let (node, listener) = Node::new(cfg)?;
    spawn_accept_loop(Arc::clone(&node), listener);
    for p in 0..node.cfg.places {
        if p != node.own() {
            spawn_writer(Arc::clone(&node), p);
        }
    }
    spawn_heartbeat(Arc::clone(&node));
    // Announce ourselves to the coordinator so the startup barrier
    // (and, on restart, the revival path) sees us promptly.
    if !node.is_coord() {
        node.send(
            0,
            Frame::Heartbeat {
                hlc: node.hlc.tick(),
                busy: 0,
                shared_len: 0,
            },
        );
    }
    let mut workers = Vec::new();
    let deques: Vec<PrivateDeque<WireTask>> = (0..node.cfg.wpp).map(|_| chase_lev().0).collect();
    let mut handed: Vec<PrivateDeque<WireTask>> = Vec::new();
    let stealers: Vec<Stealer<WireTask>> = deques.iter().map(|d| d.stealer()).collect();
    for d in deques {
        handed.push(d);
    }
    for (wx, deque) in handed.into_iter().enumerate() {
        let node2 = Arc::clone(&node);
        let stealers = stealers.clone();
        let gw = node.cluster.global(node.own_place(), WorkerId(wx as u32));
        let policy = node.policy.lock().unwrap().clone_box();
        let rng = SplitMix64::new(node.cfg.seed ^ mix64(0x5EED ^ u64::from(gw.0)));
        workers.push(thread::spawn(move || {
            let mut ctx = WorkerCtx {
                node: node2,
                gw,
                deque,
                stealers,
                wx,
                policy,
                rng,
                retry: WallRetry::new(cluster_retry_defaults()),
            };
            ctx.run();
        }));
    }
    let code = if node.is_coord() {
        node.run_coordinator()
    } else {
        node.run_follower()
    };
    node.shutdown.store(true, Ordering::Release);
    for h in workers {
        let _ = h.join();
    }
    let _ = node.trace.lock().unwrap().flush();
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn test_dir(tag: &str) -> PathBuf {
        static N: TestCounter = TestCounter::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("distws-place-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn place_cfg(dir: &std::path::Path, place: u32, places: u32, app: &str) -> PlaceConfig {
        let mut cfg = PlaceConfig::new(place, places, 2, dir.to_path_buf(), app);
        cfg.trace_path = dir.join(format!("trace-p{place}-e0.jsonl"));
        if place == 0 {
            cfg.report_path = Some(dir.join("report.json"));
        }
        cfg.round_timeout_ms = 20_000;
        cfg.run_deadline_ms = 30_000;
        cfg
    }

    /// Run an N-place cluster as in-process threads over real Unix
    /// sockets; return the coordinator's exit code.
    fn run_threaded_cluster(places: u32, app: &str, policy: &str) -> (i32, PathBuf) {
        let dir = test_dir(app);
        let mut handles = Vec::new();
        for p in (1..places).rev() {
            let mut cfg = place_cfg(&dir, p, places, app);
            cfg.policy = policy.to_string();
            handles.push(thread::spawn(move || run_place(cfg).unwrap()));
        }
        let mut cfg0 = place_cfg(&dir, 0, places, app);
        cfg0.policy = policy.to_string();
        let code = run_place(cfg0).unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0, "follower exit");
        }
        (code, dir)
    }

    #[test]
    fn single_place_quicksort_validates() {
        let dir = test_dir("solo");
        let cfg = place_cfg(&dir, 0, 1, "quicksort");
        assert_eq!(run_place(cfg).unwrap(), 0);
        let report = fs::read_to_string(dir.join("report.json")).unwrap();
        let v = Value::parse(&report).unwrap();
        assert_eq!(v.get("result_ok").and_then(|x| x.as_u64()), None);
        assert_eq!(v.get("places_failed").and_then(|x| x.as_u64()), Some(0));
        let trace = fs::read_to_string(dir.join("trace-p0-e0.jsonl")).unwrap();
        assert!(trace.contains("task_start"), "trace has task activity");
    }

    #[test]
    fn two_place_quicksort_over_unix_sockets() {
        let (code, dir) = run_threaded_cluster(2, "quicksort", "distws");
        assert_eq!(code, 0);
        let report = fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(report.contains("\"result_ok\": true"), "{report}");
    }

    #[test]
    fn three_place_kmeans_over_unix_sockets() {
        let (code, dir) = run_threaded_cluster(3, "kmeans", "distws");
        assert_eq!(code, 0);
        let report = fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(report.contains("\"result_ok\": true"), "{report}");
    }

    #[test]
    fn duplicate_task_migrate_is_dropped() {
        let dir = test_dir("dup");
        let cfg = place_cfg(&dir, 0, 1, "quicksort");
        let (node, _listener) = Node::new(cfg).unwrap();
        let t = WireTask {
            id: 77,
            home: 0,
            locality: 1,
            flags: 0,
            kind: 0,
            est: 1,
            payload: vec![1, 2],
        };
        node.accept_migrated(vec![t.clone()]);
        node.accept_migrated(vec![t.clone()]); // doctored duplicate
        assert_eq!(node.inbox.len(), 1, "resident dedup");
        // Drain, execute-equivalent bookkeeping, then replay again:
        // the done-set must reject it too.
        let _ = node.inbox.take().unwrap();
        node.resident.lock().unwrap().remove(&t.id);
        node.done.lock().unwrap().insert(t.id);
        node.accept_migrated(vec![t]);
        assert_eq!(node.inbox.len(), 0, "done dedup");
    }

    #[test]
    fn unknown_app_or_policy_is_an_input_error() {
        let dir = test_dir("bad");
        let mut cfg = place_cfg(&dir, 0, 1, "nope");
        assert!(run_place(cfg.clone()).is_err());
        cfg.app = "quicksort".into();
        cfg.policy = "nope".into();
        assert!(run_place(cfg).is_err());
    }
}
