//! Wall-clock adapters for [`RetryPolicy`].
//!
//! The simulator consumes `RetryPolicy` in virtual nanoseconds; the
//! cluster runtime needs the same timeout/backoff/budget semantics
//! against real deadlines. [`WallRetry`] converts the nanosecond
//! fields to [`Duration`]s without changing the arithmetic — for a
//! given seed the backoff sequence is bit-identical to the virtual
//! path (`RetryPolicy::backoff_ns`), which the adapter tests pin
//! against the `crates/sched` edge cases.
//!
//! [`Reconnector`] drives reconnection to a crashed-and-maybe-
//! restarting peer: jittered exponential backoff from the same policy,
//! but with a hard attempt budget after which it reports the peer
//! permanently gone ([`Reconnector::next_delay`] returns `None`) so
//! the run degrades to fewer places instead of hanging.

use distws_core::SplitMix64;
use distws_sched::RetryPolicy;
use std::time::Duration;

/// Cluster-scale defaults: sockets between local processes answer in
/// microseconds, but a SIGKILLed peer answers never — timeouts sized
/// in milliseconds keep live probes cheap and dead probes short.
pub fn cluster_retry_defaults() -> RetryPolicy {
    RetryPolicy {
        timeout_ns: 50_000_000,     // 50 ms probe timeout
        backoff_base_ns: 2_000_000, // 2 ms first backoff
        backoff_max_ns: 32_000_000, // capped at 32 ms
        jitter_ns: 1_000_000,       // up to 1 ms jitter
        budget: 2,
    }
}

/// Reconnect schedule defaults: a restarting place needs hundreds of
/// milliseconds to come back, and a dead one never does; ~25 attempts
/// with a 400 ms cap bounds the wait to roughly ten seconds.
pub fn reconnect_defaults() -> RetryPolicy {
    RetryPolicy {
        timeout_ns: 200_000_000,
        backoff_base_ns: 25_000_000,
        backoff_max_ns: 400_000_000,
        jitter_ns: 10_000_000,
        budget: 25,
    }
}

/// [`RetryPolicy`] viewed through wall-clock [`Duration`]s.
#[derive(Debug, Clone, Copy)]
pub struct WallRetry {
    /// The underlying virtual-time policy.
    pub policy: RetryPolicy,
}

impl WallRetry {
    /// Wrap a policy.
    pub fn new(policy: RetryPolicy) -> Self {
        WallRetry { policy }
    }

    /// Probe timeout as a real deadline.
    pub fn timeout(&self) -> Duration {
        Duration::from_nanos(self.policy.timeout_ns)
    }

    /// Backoff before retry `attempt` (1-based) — same value the
    /// virtual-time path computes for the same `rng` state.
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        Duration::from_nanos(self.policy.backoff_ns(attempt, rng))
    }

    /// Retry budget (retries after the first timeout).
    pub fn budget(&self) -> u32 {
        self.policy.budget
    }
}

/// Bounded reconnection schedule against one peer.
#[derive(Debug, Clone)]
pub struct Reconnector {
    wall: WallRetry,
    attempt: u32,
    rng: SplitMix64,
}

impl Reconnector {
    /// A fresh schedule (seeded so concurrent reconnectors de-sync).
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Reconnector {
            wall: WallRetry::new(policy),
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Delay before the next reconnect attempt, or `None` once the
    /// budget is exhausted — the caller must then mark the peer
    /// permanently failed and continue degraded, never block.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.wall.budget() {
            return None;
        }
        self.attempt += 1;
        Some(self.wall.backoff(self.attempt, &mut self.rng))
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// A successful connect resets the schedule (a future crash of the
    /// same peer gets a full budget again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wall-clock adapter must replay the virtual-time backoff
    /// sequence exactly — cross-checked against the values pinned by
    /// `crates/sched/src/retry.rs::backoff_grows_exponentially_then_caps`.
    #[test]
    fn backoff_matches_virtual_time_sequence() {
        let p = RetryPolicy {
            jitter_ns: 0,
            ..Default::default()
        };
        let w = WallRetry::new(p);
        let mut rng = SplitMix64::new(1);
        assert_eq!(w.backoff(1, &mut rng), Duration::from_nanos(10_000));
        assert_eq!(w.backoff(2, &mut rng), Duration::from_nanos(20_000));
        assert_eq!(w.backoff(3, &mut rng), Duration::from_nanos(40_000));
        assert_eq!(w.backoff(10, &mut rng), Duration::from_nanos(160_000));
        assert_eq!(w.backoff(64, &mut rng), Duration::from_nanos(160_000));
    }

    /// Identical seeds → identical jittered sequences on both paths.
    #[test]
    fn same_seed_same_jittered_backoffs() {
        let p = RetryPolicy::default();
        let w = WallRetry::new(p);
        for seed in [1u64, 7, 0xDEAD_BEEF, u64::MAX] {
            let mut virt = SplitMix64::new(seed);
            let mut wall = SplitMix64::new(seed);
            for attempt in 1..=8u32 {
                let v = p.backoff_ns(attempt, &mut virt);
                let d = w.backoff(attempt, &mut wall);
                assert_eq!(d, Duration::from_nanos(v), "seed {seed} attempt {attempt}");
            }
        }
    }

    #[test]
    fn timeout_and_budget_pass_through() {
        let w = WallRetry::new(cluster_retry_defaults());
        assert_eq!(w.timeout(), Duration::from_millis(50));
        assert_eq!(w.budget(), 2);
    }

    /// The reconnect schedule must terminate: after `budget` delays it
    /// reports the peer gone rather than yielding delays forever.
    #[test]
    fn reconnect_budget_exhaustion_degrades_rather_than_hangs() {
        let p = RetryPolicy {
            budget: 3,
            jitter_ns: 0,
            ..cluster_retry_defaults()
        };
        let mut r = Reconnector::new(p, 42);
        let mut delays = Vec::new();
        while let Some(d) = r.next_delay() {
            delays.push(d);
            assert!(delays.len() <= 3, "schedule exceeded its budget");
        }
        assert_eq!(delays.len(), 3);
        // Exhausted stays exhausted.
        assert_eq!(r.next_delay(), None);
        assert_eq!(r.next_delay(), None);
        // Exponential shape survives the Duration conversion.
        assert_eq!(delays[1], delays[0] * 2);
        assert_eq!(delays[2], delays[0] * 4);
    }

    #[test]
    fn zero_budget_never_retries() {
        let p = RetryPolicy {
            budget: 0,
            ..cluster_retry_defaults()
        };
        let mut r = Reconnector::new(p, 1);
        assert_eq!(r.next_delay(), None);
    }

    #[test]
    fn reset_restores_the_full_budget() {
        let p = RetryPolicy {
            budget: 2,
            ..cluster_retry_defaults()
        };
        let mut r = Reconnector::new(p, 9);
        assert!(r.next_delay().is_some());
        assert!(r.next_delay().is_some());
        assert_eq!(r.next_delay(), None);
        r.reset();
        assert!(r.next_delay().is_some(), "reset must re-arm the schedule");
    }
}
