//! Length-prefixed binary frames between place processes.
//!
//! Every frame on the wire is `u32` little-endian payload length, then
//! the payload: one tag byte, the sender's HLC stamp (`u64` LE), and
//! tag-specific fields. The first frame on every connection must be
//! [`Frame::Hello`] — it carries the wire version (mismatch is a hard
//! error), the sender's place id (identifying the peer for failure
//! detection), the cluster shape, and the sender's incarnation epoch
//! (bumped on restart so stale state is discarded).
//!
//! All integers are little-endian and fixed-width; vectors are a `u32`
//! count followed by the elements. There is no compression and no
//! self-description — both ends are the same binary, version-checked
//! by the handshake.

use distws_sched::protocol::MessageKind;
use std::io::{self, Read, Write};

/// Bump on any incompatible frame-layout change.
pub const WIRE_VERSION: u16 = 1;

/// Refuse absurd frames before allocating (corrupt peer / wrong port).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// [`WireTask::flags`] bit: this task may have executed before (it
/// was re-injected after a place failure), so its children must be
/// spawned through the coordinator's registry instead of the local
/// fast path — the registry dedups children that are already alive or
/// done elsewhere.
pub const TASK_RECOVERED: u8 = 1;

/// A task in transit between places.
///
/// `id` is globally unique and deterministic (derived from the parent
/// id and child index, so a crash-recovery re-execution regenerates
/// identical ids), `home` is the place the task was spawned at, and
/// `payload` carries the application state needed to execute it
/// anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTask {
    /// Globally unique deterministic task id.
    pub id: u64,
    /// Place the task was spawned at.
    pub home: u32,
    /// Locality class (feeds `Policy::may_migrate`).
    pub locality: u8,
    /// Recovery flags ([`TASK_RECOVERED`]).
    pub flags: u8,
    /// Application-defined task kind discriminant.
    pub kind: u16,
    /// Estimated cost in arbitrary units (feeds chunk heuristics).
    pub est: u64,
    /// Application state; semantics are up to the `ClusterApp`.
    pub payload: Vec<u64>,
}

/// One protocol message. Every variant's first field is the sender's
/// HLC stamp at send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection opener: version + identity + shape + incarnation.
    Hello {
        /// Sender HLC stamp.
        hlc: u64,
        /// Must equal [`WIRE_VERSION`].
        version: u16,
        /// Sender's place id.
        place: u32,
        /// Total places in the cluster.
        places: u32,
        /// Workers per place.
        wpp: u32,
        /// Sender's incarnation epoch (0 first boot, +1 per restart).
        epoch: u32,
    },
    /// Thief asks a victim for up to `chunk` tasks.
    StealProbe {
        /// Sender HLC stamp.
        hlc: u64,
        /// Correlates the eventual [`Frame::StealReply`].
        probe_id: u64,
        /// Thief's place id.
        thief_place: u32,
        /// Thief's local worker index.
        thief_worker: u32,
        /// Max tasks requested.
        chunk: u32,
    },
    /// Victim's answer: zero or more migrated tasks.
    StealReply {
        /// Sender HLC stamp.
        hlc: u64,
        /// Echo of the probe's id.
        probe_id: u64,
        /// The stolen tasks (empty = nothing to steal).
        tasks: Vec<WireTask>,
    },
    /// Push tasks to a peer outside the probe/reply path: the
    /// coordinator routing fresh roots and children, or re-injecting
    /// reclaimed payloads after a place failure.
    TaskMigrate {
        /// Sender HLC stamp.
        hlc: u64,
        /// Sending place.
        from_place: u32,
        /// The migrated tasks.
        tasks: Vec<WireTask>,
    },
    /// Registration of freshly spawned tasks with the coordinator's
    /// registry: the registry entry (payload included) is the lease
    /// the coordinator reclaims if the place holding the task dies.
    SpawnNote {
        /// Sender HLC stamp.
        hlc: u64,
        /// The new tasks, payloads included.
        tasks: Vec<WireTask>,
    },
    /// Completion notice to the coordinator: decrements the global
    /// finish counter and releases the task's lease.
    FinishDec {
        /// Sender HLC stamp.
        hlc: u64,
        /// The finished task.
        task: u64,
        /// The task's contribution to the round fold.
        result: Vec<u64>,
    },
    /// A thief tells the coordinator where a stolen task now lives,
    /// so the lease points at the task's current holder.
    TaskMoved {
        /// Sender HLC stamp.
        hlc: u64,
        /// The task whose lease moved.
        task: u64,
        /// The place now holding it.
        to: u32,
        /// The incarnation (epoch) of `to` the sender handed the task
        /// to. Lets the coordinator tell a lease to a dead incarnation
        /// (reclaim) from one to a freshly restarted incarnation whose
        /// revival it has not yet processed (do not reclaim).
        to_epoch: u32,
    },
    /// Coordinator asks a place whether it currently holds a task.
    ///
    /// Sent while reclaiming a dead place's work: a task the dead
    /// place leased away (or a `StealReply` it sent just before
    /// dying) may or may not have reached a live peer, and only that
    /// peer knows. `victim`/`victim_epoch` name the dead incarnation
    /// whose in-flight payload is in doubt; a place answering "no"
    /// records them and drops any late-arriving steal payload for the
    /// task from that incarnation, so the answer stays true.
    TaskQuery {
        /// Sender HLC stamp.
        hlc: u64,
        /// The task whose custody is in doubt.
        task: u64,
        /// The dead place being swept.
        victim: u32,
        /// The swept incarnation of `victim`.
        victim_epoch: u32,
    },
    /// A place's answer to [`Frame::TaskQuery`].
    TaskAnswer {
        /// Sender HLC stamp.
        hlc: u64,
        /// Echo of the queried task id.
        task: u64,
        /// True iff the sender holds the task (queued or executing).
        /// A finished task answers `false`; its `FinishDec` precedes
        /// the answer on the same ordered connection, so the
        /// coordinator always learns of the finish first.
        have: bool,
    },
    /// Liveness + load beacon (feeds the shared board's remote view).
    Heartbeat {
        /// Sender HLC stamp.
        hlc: u64,
        /// Busy workers at the sender.
        busy: u32,
        /// Sender's shared-queue length.
        shared_len: u32,
    },
    /// Coordinator ends the run.
    Shutdown {
        /// Sender HLC stamp.
        hlc: u64,
        /// Places still dead at shutdown.
        places_failed: u32,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_STEAL_PROBE: u8 = 2;
const TAG_STEAL_REPLY: u8 = 3;
const TAG_TASK_MIGRATE: u8 = 4;
const TAG_FINISH_DEC: u8 = 5;
const TAG_TASK_MOVED: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_SPAWN_NOTE: u8 = 9;
const TAG_TASK_QUERY: u8 = 10;
const TAG_TASK_ANSWER: u8 = 11;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Sequential reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated frame",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in frame",
            ));
        }
        Ok(())
    }
}

fn put_task(buf: &mut Vec<u8>, t: &WireTask) {
    put_u64(buf, t.id);
    put_u32(buf, t.home);
    buf.push(t.locality);
    buf.push(t.flags);
    put_u16(buf, t.kind);
    put_u64(buf, t.est);
    put_u32(buf, t.payload.len() as u32);
    for &w in &t.payload {
        put_u64(buf, w);
    }
}

fn get_task(c: &mut Cursor<'_>) -> io::Result<WireTask> {
    let id = c.u64()?;
    let home = c.u32()?;
    let locality = c.u8()?;
    let flags = c.u8()?;
    let kind = c.u16()?;
    let est = c.u64()?;
    let n = c.u32()? as usize;
    // Bound by the remaining payload so a corrupt count can't OOM.
    if n > c.buf.len() - c.pos {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "task payload count exceeds frame",
        ));
    }
    let mut payload = Vec::with_capacity(n);
    for _ in 0..n {
        payload.push(c.u64()?);
    }
    Ok(WireTask {
        id,
        home,
        locality,
        flags,
        kind,
        est,
        payload,
    })
}

fn put_tasks(buf: &mut Vec<u8>, tasks: &[WireTask]) {
    put_u32(buf, tasks.len() as u32);
    for t in tasks {
        put_task(buf, t);
    }
}

fn get_tasks(c: &mut Cursor<'_>) -> io::Result<Vec<WireTask>> {
    let n = c.u32()? as usize;
    if n > c.buf.len() - c.pos {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "task count exceeds frame",
        ));
    }
    let mut tasks = Vec::with_capacity(n);
    for _ in 0..n {
        tasks.push(get_task(c)?);
    }
    Ok(tasks)
}

impl Frame {
    /// The shared message-kind of this frame
    /// (`distws_sched::protocol::MessageKind`) — the vocabulary the
    /// protocol model and the TLA+ export reason over. The wire tag
    /// constants below equal `kind().tag()`; the frame tests pin the
    /// correspondence so model and wire can never drift.
    pub fn kind(&self) -> MessageKind {
        match self {
            Frame::Hello { .. } => MessageKind::Hello,
            Frame::StealProbe { .. } => MessageKind::StealProbe,
            Frame::StealReply { .. } => MessageKind::StealReply,
            Frame::TaskMigrate { .. } => MessageKind::TaskMigrate,
            Frame::FinishDec { .. } => MessageKind::FinishDec,
            Frame::TaskMoved { .. } => MessageKind::TaskMoved,
            Frame::Heartbeat { .. } => MessageKind::Heartbeat,
            Frame::Shutdown { .. } => MessageKind::Shutdown,
            Frame::SpawnNote { .. } => MessageKind::SpawnNote,
            Frame::TaskQuery { .. } => MessageKind::TaskQuery,
            Frame::TaskAnswer { .. } => MessageKind::TaskAnswer,
        }
    }

    /// The sender's HLC stamp carried by this frame.
    pub fn hlc(&self) -> u64 {
        match *self {
            Frame::Hello { hlc, .. }
            | Frame::StealProbe { hlc, .. }
            | Frame::StealReply { hlc, .. }
            | Frame::TaskMigrate { hlc, .. }
            | Frame::SpawnNote { hlc, .. }
            | Frame::FinishDec { hlc, .. }
            | Frame::TaskMoved { hlc, .. }
            | Frame::TaskQuery { hlc, .. }
            | Frame::TaskAnswer { hlc, .. }
            | Frame::Heartbeat { hlc, .. }
            | Frame::Shutdown { hlc, .. } => hlc,
        }
    }

    /// Serialize to a payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Frame::Hello {
                hlc,
                version,
                place,
                places,
                wpp,
                epoch,
            } => {
                buf.push(TAG_HELLO);
                put_u64(&mut buf, *hlc);
                put_u16(&mut buf, *version);
                put_u32(&mut buf, *place);
                put_u32(&mut buf, *places);
                put_u32(&mut buf, *wpp);
                put_u32(&mut buf, *epoch);
            }
            Frame::StealProbe {
                hlc,
                probe_id,
                thief_place,
                thief_worker,
                chunk,
            } => {
                buf.push(TAG_STEAL_PROBE);
                put_u64(&mut buf, *hlc);
                put_u64(&mut buf, *probe_id);
                put_u32(&mut buf, *thief_place);
                put_u32(&mut buf, *thief_worker);
                put_u32(&mut buf, *chunk);
            }
            Frame::StealReply {
                hlc,
                probe_id,
                tasks,
            } => {
                buf.push(TAG_STEAL_REPLY);
                put_u64(&mut buf, *hlc);
                put_u64(&mut buf, *probe_id);
                put_tasks(&mut buf, tasks);
            }
            Frame::TaskMigrate {
                hlc,
                from_place,
                tasks,
            } => {
                buf.push(TAG_TASK_MIGRATE);
                put_u64(&mut buf, *hlc);
                put_u32(&mut buf, *from_place);
                put_tasks(&mut buf, tasks);
            }
            Frame::SpawnNote { hlc, tasks } => {
                buf.push(TAG_SPAWN_NOTE);
                put_u64(&mut buf, *hlc);
                put_tasks(&mut buf, tasks);
            }
            Frame::FinishDec { hlc, task, result } => {
                buf.push(TAG_FINISH_DEC);
                put_u64(&mut buf, *hlc);
                put_u64(&mut buf, *task);
                put_u32(&mut buf, result.len() as u32);
                for &w in result {
                    put_u64(&mut buf, w);
                }
            }
            Frame::TaskMoved {
                hlc,
                task,
                to,
                to_epoch,
            } => {
                buf.push(TAG_TASK_MOVED);
                put_u64(&mut buf, *hlc);
                put_u64(&mut buf, *task);
                put_u32(&mut buf, *to);
                put_u32(&mut buf, *to_epoch);
            }
            Frame::TaskQuery {
                hlc,
                task,
                victim,
                victim_epoch,
            } => {
                buf.push(TAG_TASK_QUERY);
                put_u64(&mut buf, *hlc);
                put_u64(&mut buf, *task);
                put_u32(&mut buf, *victim);
                put_u32(&mut buf, *victim_epoch);
            }
            Frame::TaskAnswer { hlc, task, have } => {
                buf.push(TAG_TASK_ANSWER);
                put_u64(&mut buf, *hlc);
                put_u64(&mut buf, *task);
                buf.push(u8::from(*have));
            }
            Frame::Heartbeat {
                hlc,
                busy,
                shared_len,
            } => {
                buf.push(TAG_HEARTBEAT);
                put_u64(&mut buf, *hlc);
                put_u32(&mut buf, *busy);
                put_u32(&mut buf, *shared_len);
            }
            Frame::Shutdown { hlc, places_failed } => {
                buf.push(TAG_SHUTDOWN);
                put_u64(&mut buf, *hlc);
                put_u32(&mut buf, *places_failed);
            }
        }
        buf
    }

    /// Parse a payload produced by [`Frame::encode`].
    pub fn decode(payload: &[u8]) -> io::Result<Frame> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                hlc: c.u64()?,
                version: c.u16()?,
                place: c.u32()?,
                places: c.u32()?,
                wpp: c.u32()?,
                epoch: c.u32()?,
            },
            TAG_STEAL_PROBE => Frame::StealProbe {
                hlc: c.u64()?,
                probe_id: c.u64()?,
                thief_place: c.u32()?,
                thief_worker: c.u32()?,
                chunk: c.u32()?,
            },
            TAG_STEAL_REPLY => Frame::StealReply {
                hlc: c.u64()?,
                probe_id: c.u64()?,
                tasks: get_tasks(&mut c)?,
            },
            TAG_TASK_MIGRATE => Frame::TaskMigrate {
                hlc: c.u64()?,
                from_place: c.u32()?,
                tasks: get_tasks(&mut c)?,
            },
            TAG_SPAWN_NOTE => Frame::SpawnNote {
                hlc: c.u64()?,
                tasks: get_tasks(&mut c)?,
            },
            TAG_FINISH_DEC => {
                let hlc = c.u64()?;
                let task = c.u64()?;
                let n = c.u32()? as usize;
                if n > c.buf.len() - c.pos {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "result count exceeds frame",
                    ));
                }
                let mut result = Vec::with_capacity(n);
                for _ in 0..n {
                    result.push(c.u64()?);
                }
                Frame::FinishDec { hlc, task, result }
            }
            TAG_TASK_MOVED => Frame::TaskMoved {
                hlc: c.u64()?,
                task: c.u64()?,
                to: c.u32()?,
                to_epoch: c.u32()?,
            },
            TAG_TASK_QUERY => Frame::TaskQuery {
                hlc: c.u64()?,
                task: c.u64()?,
                victim: c.u32()?,
                victim_epoch: c.u32()?,
            },
            TAG_TASK_ANSWER => {
                let hlc = c.u64()?;
                let task = c.u64()?;
                let have = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad bool byte {other}"),
                        ));
                    }
                };
                Frame::TaskAnswer { hlc, task, have }
            }
            TAG_HEARTBEAT => Frame::Heartbeat {
                hlc: c.u64()?,
                busy: c.u32()?,
                shared_len: c.u32()?,
            },
            TAG_SHUTDOWN => Frame::Shutdown {
                hlc: c.u64()?,
                places_failed: c.u32()?,
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ));
            }
        };
        c.done()?;
        Ok(frame)
    }

    /// Write this frame (length prefix + payload) to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let payload = self.encode();
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()
    }

    /// Read one frame from a stream. `Ok(None)` on clean EOF at a
    /// frame boundary (peer closed the connection).
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            let n = r.read(&mut len_buf[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside length prefix",
                ));
            }
            filled += n;
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Frame::decode(&payload).map(Some)
    }

    /// Validate a received [`Frame::Hello`]: version must match.
    pub fn check_hello(&self) -> io::Result<()> {
        match self {
            Frame::Hello { version, .. } if *version == WIRE_VERSION => Ok(()),
            Frame::Hello { version, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire version mismatch: peer {version}, ours {WIRE_VERSION}"),
            )),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "first frame was not Hello",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task(id: u64) -> WireTask {
        WireTask {
            id,
            home: 2,
            locality: 1,
            flags: 0,
            kind: 7,
            est: 4096,
            payload: vec![id, id.wrapping_mul(31), u64::MAX],
        }
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                hlc: 10,
                version: WIRE_VERSION,
                place: 3,
                places: 4,
                wpp: 2,
                epoch: 1,
            },
            Frame::StealProbe {
                hlc: 11,
                probe_id: 99,
                thief_place: 1,
                thief_worker: 0,
                chunk: 8,
            },
            Frame::StealReply {
                hlc: 12,
                probe_id: 99,
                tasks: vec![sample_task(5), sample_task(6)],
            },
            Frame::StealReply {
                hlc: 13,
                probe_id: 100,
                tasks: vec![],
            },
            Frame::TaskMigrate {
                hlc: 14,
                from_place: 2,
                tasks: vec![sample_task(7)],
            },
            Frame::SpawnNote {
                hlc: 15,
                tasks: vec![sample_task(8), sample_task(9)],
            },
            Frame::FinishDec {
                hlc: 15,
                task: 7,
                result: vec![1, 2, 3],
            },
            Frame::TaskMoved {
                hlc: 16,
                task: 7,
                to: 1,
                to_epoch: 0,
            },
            Frame::TaskQuery {
                hlc: 16,
                task: 7,
                victim: 2,
                victim_epoch: 1,
            },
            Frame::TaskAnswer {
                hlc: 17,
                task: 7,
                have: true,
            },
            Frame::TaskAnswer {
                hlc: 17,
                task: 8,
                have: false,
            },
            Frame::Heartbeat {
                hlc: 17,
                busy: 2,
                shared_len: 40,
            },
            Frame::Shutdown {
                hlc: 18,
                places_failed: 0,
            },
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        for f in all_frames() {
            let enc = f.encode();
            let dec = Frame::decode(&enc).expect("decode");
            assert_eq!(dec, f);
        }
    }

    #[test]
    fn stream_roundtrip_preserves_order() {
        let frames = all_frames();
        let mut wire = Vec::new();
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            let got = Frame::read_from(&mut r).unwrap().expect("frame");
            assert_eq!(&got, f);
        }
        assert!(Frame::read_from(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn wire_tags_equal_the_shared_message_kind_enum() {
        // The first payload byte of every encoded frame must be its
        // MessageKind discriminant — the contract that keeps the
        // protocol model's vocabulary honest about the wire.
        for f in all_frames() {
            assert_eq!(
                f.encode()[0],
                f.kind().tag(),
                "tag drift for {:?}",
                f.kind().name()
            );
        }
        // And the enum covers exactly the tag space the wire uses.
        assert_eq!(MessageKind::ALL.len(), 11);
    }

    #[test]
    fn hlc_accessor_matches_encoded_stamp() {
        for f in all_frames() {
            assert!(f.hlc() >= 10);
            assert_eq!(Frame::decode(&f.encode()).unwrap().hlc(), f.hlc());
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let bad = Frame::Hello {
            hlc: 1,
            version: WIRE_VERSION + 1,
            place: 0,
            places: 2,
            wpp: 1,
            epoch: 0,
        };
        let err = bad.check_hello().unwrap_err();
        assert!(err.to_string().contains("version mismatch"), "{err}");
        // Non-Hello first frame is also rejected.
        let not_hello = Frame::Heartbeat {
            hlc: 1,
            busy: 0,
            shared_len: 0,
        };
        assert!(not_hello.check_hello().is_err());
    }

    #[test]
    fn truncated_and_trailing_bytes_are_errors() {
        let enc = Frame::StealProbe {
            hlc: 1,
            probe_id: 2,
            thief_place: 3,
            thief_worker: 0,
            chunk: 4,
        }
        .encode();
        assert!(Frame::decode(&enc[..enc.len() - 1]).is_err(), "truncated");
        let mut padded = enc.clone();
        padded.push(0);
        assert!(Frame::decode(&padded).is_err(), "trailing");
    }

    #[test]
    fn corrupt_task_count_is_rejected_without_allocating() {
        // StealReply claiming u32::MAX tasks in a tiny frame.
        let mut buf = Vec::new();
        buf.push(3); // TAG_STEAL_REPLY
        buf.extend_from_slice(&1u64.to_le_bytes()); // hlc
        buf.extend_from_slice(&9u64.to_le_bytes()); // probe_id
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // task count
        assert!(Frame::decode(&buf).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        let mut r = &wire[..];
        assert!(Frame::read_from(&mut r).is_err());
    }
}
