//! The cluster launcher: spawn N place *processes*, SIGKILL some of
//! them on schedule, optionally restart them, then merge and validate
//! the per-incarnation traces.
//!
//! This is the engine behind `repro cluster`. The launcher re-execs
//! the current binary with a hidden per-place subcommand (so one
//! executable is both launcher and place), schedules real `SIGKILL`s
//! via [`std::process::Child::kill`], and — after the coordinator
//! exits — feeds the HLC-merged trace ([`crate::merge`]) through the
//! happens-before validator and the Algorithm 1 conformance automaton
//! from `distws-analyze`. A run "survives" a fault only if all three
//! agree: the coordinator validated its fold, the merged trace shows
//! exactly-once execution, and every steal obeyed the policy's tier
//! order.

use crate::merge::{merge_traces, MergeStats, TraceFile};
use crate::place::Transport;
use distws_analyze::{conform_str, validate_str, ConformConfig};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One scheduled fault: SIGKILL `place` at `kill_ms` after launch,
/// optionally restarting it at `restart_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillSpec {
    /// Victim place (never 0 — the coordinator is the root of trust).
    pub place: u32,
    /// Milliseconds after launch to deliver SIGKILL.
    pub kill_ms: u64,
    /// Milliseconds after launch to restart the place, if at all.
    pub restart_ms: Option<u64>,
}

/// Parse a kill schedule: `place@ms[,restart@ms]`, `;`-separated.
///
/// ```text
/// 1@300                  kill place 1 at t=300ms, no restart
/// 1@300,restart@900      kill at 300ms, restart at 900ms
/// 1@300;2@500            two victims
/// ```
pub fn parse_kill_spec(spec: &str) -> Result<Vec<KillSpec>, String> {
    let mut out = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut fields = part.split(',');
        let head = fields.next().unwrap();
        let (place, kill_ms) = head
            .split_once('@')
            .ok_or_else(|| format!("bad kill spec `{head}`: want place@ms"))?;
        let place: u32 = place
            .trim()
            .parse()
            .map_err(|_| format!("bad place in `{head}`"))?;
        if place == 0 {
            return Err("place 0 is the coordinator and cannot be killed".to_string());
        }
        let kill_ms: u64 = kill_ms
            .trim()
            .parse()
            .map_err(|_| format!("bad kill time in `{head}`"))?;
        let mut restart_ms = None;
        for extra in fields {
            let (key, ms) = extra
                .split_once('@')
                .ok_or_else(|| format!("bad kill spec field `{extra}`"))?;
            if key.trim() != "restart" {
                return Err(format!("unknown kill spec field `{key}`"));
            }
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| format!("bad restart time in `{extra}`"))?;
            if ms <= kill_ms {
                return Err(format!(
                    "restart at {ms}ms is not after kill at {kill_ms}ms"
                ));
            }
            restart_ms = Some(ms);
        }
        out.push(KillSpec {
            place,
            kill_ms,
            restart_ms,
        });
    }
    Ok(out)
}

/// Everything `run_cluster` needs.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Application name.
    pub app: String,
    /// Policy name.
    pub policy: String,
    /// Place count (processes).
    pub places: u32,
    /// Workers per place.
    pub wpp: u32,
    /// App / rng seed.
    pub seed: u64,
    /// Socket family.
    pub transport: Transport,
    /// Run directory (sockets, traces, report, merged trace).
    pub dir: PathBuf,
    /// Fault schedule.
    pub kills: Vec<KillSpec>,
    /// Per-round watchdog forwarded to the coordinator.
    pub round_timeout_ms: u64,
    /// Overall follower deadline.
    pub run_deadline_ms: u64,
    /// Binary to exec for each place (usually
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Argument prefix selecting the per-place entry point, e.g.
    /// `["cluster-place"]`.
    pub place_args: Vec<String>,
}

/// What a cluster run produced.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// Coordinator's exit code (0 clean, 2 bad result, 3 deadline).
    pub exit_code: i32,
    /// Raw `report.json` text, if the coordinator wrote one.
    pub report: Option<String>,
    /// `places_failed` parsed out of the report (dead at shutdown).
    pub places_failed: u64,
    /// Path of the merged trace.
    pub merged_path: PathBuf,
    /// Merge bookkeeping.
    pub merge_stats: MergeStats,
    /// Happens-before validation messages (empty = passed).
    pub hb_violations: Vec<String>,
    /// Conformance automaton messages (empty = passed).
    pub conform_violations: Vec<String>,
    /// Kills actually delivered (a place can finish before its
    /// scheduled kill).
    pub kills_delivered: u32,
}

impl LaunchOutcome {
    /// Clean run: coordinator validated, no dead places at shutdown,
    /// and both trace validators passed.
    pub fn ok(&self) -> bool {
        self.exit_code == 0 && self.hb_violations.is_empty() && self.conform_violations.is_empty()
    }
}

struct Incarnation {
    place: u32,
    epoch: u32,
    trace: PathBuf,
    failed: bool,
}

enum Action {
    Kill(u32),
    Restart(u32),
}

fn spawn_place(cfg: &LaunchConfig, place: u32, epoch: u32) -> io::Result<(Child, PathBuf)> {
    let trace = cfg.dir.join(format!("trace-p{place}-e{epoch}.jsonl"));
    let mut cmd = Command::new(&cfg.exe);
    cmd.args(&cfg.place_args)
        .arg("--place")
        .arg(place.to_string())
        .arg("--places")
        .arg(cfg.places.to_string())
        .arg("--wpp")
        .arg(cfg.wpp.to_string())
        .arg("--epoch")
        .arg(epoch.to_string())
        .arg("--transport")
        .arg(match cfg.transport {
            Transport::Unix => "unix",
            Transport::Tcp => "tcp",
        })
        .arg("--dir")
        .arg(&cfg.dir)
        .arg("--app")
        .arg(&cfg.app)
        .arg("--policy")
        .arg(&cfg.policy)
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .arg("--trace")
        .arg(&trace)
        .arg("--round-timeout-ms")
        .arg(cfg.round_timeout_ms.to_string())
        .arg("--run-deadline-ms")
        .arg(cfg.run_deadline_ms.to_string())
        .stdin(Stdio::null());
    if place == 0 {
        cmd.arg("--report").arg(cfg.dir.join("report.json"));
    }
    cmd.spawn().map(|c| (c, trace))
}

/// Launch the cluster, run the fault schedule, collect and validate.
pub fn run_cluster(cfg: &LaunchConfig) -> io::Result<LaunchOutcome> {
    fs::create_dir_all(&cfg.dir)?;
    for k in &cfg.kills {
        if k.place == 0 || k.place >= cfg.places {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("kill spec names invalid place {}", k.place),
            ));
        }
    }

    let mut incarnations: Vec<Incarnation> = Vec::new();
    let mut running: HashMap<u32, (Child, usize)> = HashMap::new(); // place -> (child, incarnation idx)
    let mut epochs: HashMap<u32, u32> = HashMap::new();
    // Start followers first so the coordinator's startup barrier is
    // short, coordinator last.
    for place in (0..cfg.places).rev() {
        let (child, trace) = spawn_place(cfg, place, 0)?;
        incarnations.push(Incarnation {
            place,
            epoch: 0,
            trace,
            failed: false,
        });
        running.insert(place, (child, incarnations.len() - 1));
        epochs.insert(place, 0);
    }

    // Flatten the fault schedule into a timeline.
    let start = Instant::now();
    let mut timeline: Vec<(u64, Action)> = Vec::new();
    for k in &cfg.kills {
        timeline.push((k.kill_ms, Action::Kill(k.place)));
        if let Some(ms) = k.restart_ms {
            timeline.push((ms, Action::Restart(k.place)));
        }
    }
    timeline.sort_by_key(|(ms, _)| *ms);
    let mut next_action = 0usize;
    let mut kills_delivered = 0u32;

    // Drive: fire scheduled actions, reap children, stop once the
    // coordinator exits.
    let mut coord_code: Option<i32> = None;
    let hard_deadline = start + Duration::from_millis(cfg.run_deadline_ms + 10_000);
    while coord_code.is_none() && Instant::now() < hard_deadline {
        let now_ms = start.elapsed().as_millis() as u64;
        while next_action < timeline.len() && timeline[next_action].0 <= now_ms {
            match timeline[next_action].1 {
                Action::Kill(p) => {
                    if let Some((child, idx)) = running.get_mut(&p) {
                        let _ = child.kill();
                        let _ = child.wait();
                        incarnations[*idx].failed = true;
                        kills_delivered += 1;
                        running.remove(&p);
                    }
                }
                #[allow(clippy::map_entry)] // spawn between check and insert
                Action::Restart(p) => {
                    if !running.contains_key(&p) {
                        let epoch = epochs.get(&p).copied().unwrap_or(0) + 1;
                        epochs.insert(p, epoch);
                        let (child, trace) = spawn_place(cfg, p, epoch)?;
                        incarnations.push(Incarnation {
                            place: p,
                            epoch,
                            trace,
                            failed: false,
                        });
                        running.insert(p, (child, incarnations.len() - 1));
                    }
                }
            }
            next_action += 1;
        }
        // Reap anything that exited on its own.
        let places: Vec<u32> = running.keys().copied().collect();
        for p in places {
            let done = {
                let (child, idx) = running.get_mut(&p).unwrap();
                match child.try_wait()? {
                    Some(status) => {
                        let code = status.code().unwrap_or(-1);
                        if p == 0 {
                            coord_code = Some(code);
                        } else if code != 0 {
                            // A follower that dies by itself is a
                            // failure too (e.g. its own watchdog).
                            incarnations[*idx].failed = true;
                        }
                        true
                    }
                    None => false,
                }
            };
            if done {
                running.remove(&p);
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Coordinator is done (or the hard deadline hit): give followers a
    // moment to see the Shutdown frame, then reap stragglers.
    let grace = Instant::now() + Duration::from_secs(5);
    while !running.is_empty() && Instant::now() < grace {
        let places: Vec<u32> = running.keys().copied().collect();
        for p in places {
            if running.get_mut(&p).unwrap().0.try_wait()?.is_some() {
                running.remove(&p);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for (_, (mut child, idx)) in running.drain() {
        let _ = child.kill();
        let _ = child.wait();
        incarnations[idx].failed = true;
    }

    // Merge the incarnation traces and validate.
    let files: Vec<TraceFile> = incarnations
        .iter()
        .map(|inc| TraceFile {
            place: inc.place,
            epoch: inc.epoch,
            failed: inc.failed,
            text: fs::read_to_string(&inc.trace).unwrap_or_default(),
        })
        .collect();
    let (merged, merge_stats) = merge_traces(&files);
    let merged_path = cfg.dir.join("merged.trace.jsonl");
    fs::write(&merged_path, &merged)?;

    let hb = validate_str(&merged);
    let hb_violations = hb.violations.iter().map(|v| v.to_string()).collect();
    let ccfg = ConformConfig::for_policy(&cfg.policy).unwrap_or_else(ConformConfig::generic);
    let conform = conform_str(&merged, &ccfg);
    let conform_violations = conform.violations.iter().map(|v| v.to_string()).collect();

    let report = fs::read_to_string(cfg.dir.join("report.json")).ok();
    let places_failed = report
        .as_deref()
        .and_then(|r| distws_json::Value::parse(r).ok())
        .and_then(|v| v.get("places_failed").and_then(|x| x.as_u64()))
        .unwrap_or(u64::MAX);

    Ok(LaunchOutcome {
        exit_code: coord_code.unwrap_or(EXIT_LAUNCH_DEADLINE),
        report,
        places_failed,
        merged_path,
        merge_stats,
        hb_violations,
        conform_violations,
        kills_delivered,
    })
}

/// Synthetic exit code when the coordinator never exited and the
/// launcher's own deadline fired.
pub const EXIT_LAUNCH_DEADLINE: i32 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_spec_round_trips() {
        let ks = parse_kill_spec("1@300,restart@900;2@500").unwrap();
        assert_eq!(
            ks,
            vec![
                KillSpec {
                    place: 1,
                    kill_ms: 300,
                    restart_ms: Some(900)
                },
                KillSpec {
                    place: 2,
                    kill_ms: 500,
                    restart_ms: None
                },
            ]
        );
    }

    #[test]
    fn kill_spec_rejects_the_coordinator() {
        let err = parse_kill_spec("0@100").unwrap_err();
        assert!(err.contains("coordinator"), "{err}");
    }

    #[test]
    fn kill_spec_rejects_restart_before_kill() {
        assert!(parse_kill_spec("1@500,restart@400").is_err());
        assert!(parse_kill_spec("1@500,restart@500").is_err());
    }

    #[test]
    fn kill_spec_rejects_garbage() {
        assert!(parse_kill_spec("1#500").is_err());
        assert!(parse_kill_spec("x@500").is_err());
        assert!(parse_kill_spec("1@x").is_err());
        assert!(parse_kill_spec("1@5,reboot@9").is_err());
        assert!(parse_kill_spec("").unwrap().is_empty());
    }
}
