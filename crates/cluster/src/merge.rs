//! Merge per-place (per-incarnation) JSONL traces into one causal
//! stream the analyzers can validate.
//!
//! Each place process writes its own trace file; a restarted place
//! writes a new file per incarnation (epoch). Timestamps are hybrid
//! logical clock values ([`crate::hlc`]): every frame carries its
//! sender's stamp and the receiver merges it before acting, so sorting
//! all lines by `(t, place, epoch, line)` yields an order consistent
//! with causality — the property the happens-before validator's
//! file-order bookkeeping depends on.
//!
//! A SIGKILLed incarnation leaves artifacts a naive concatenation
//! would misreport, so the merge applies three rules:
//!
//! - **Torn tails.** A kill can land mid-`write`; unparseable lines in
//!   *failed* incarnations are dropped (and counted). Live traces are
//!   passed through untouched — garbage there is a real bug and must
//!   reach the validator.
//! - **Superseded executions.** A task the coordinator re-injected
//!   executes again elsewhere. The write-ahead discipline means the
//!   failed incarnation may hold a `task_start` (and even `task_end`)
//!   for it. If the task started in a live incarnation, the failed
//!   incarnation's `task_start`/`task_end`/`migration` lines for it
//!   are dropped: the recovery protocol's claim is that the *fold*
//!   counts it once (duplicate `FinishDec` is ignored), and the merged
//!   trace mirrors that by keeping the surviving execution.
//!   Duplicates *between live incarnations* are never dropped — those
//!   are genuine exactly-once violations and must fail validation.
//! - **Duplicate spawns.** Deterministic child ids mean a re-executed
//!   parent re-announces the same children. Only the earliest `spawn`
//!   per task id is kept (the validator treats a second spawn as an
//!   error, and the earliest one is the true causal origin).

use distws_json::Value;

/// One incarnation's trace.
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// Place id.
    pub place: u32,
    /// Incarnation epoch (0 first boot).
    pub epoch: u32,
    /// True if this incarnation was killed (SIGKILL / crash).
    pub failed: bool,
    /// The raw JSONL text.
    pub text: String,
}

/// What the merge did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Total input lines (non-blank).
    pub lines_in: u64,
    /// Lines emitted.
    pub lines_out: u64,
    /// Torn/unparseable lines dropped from failed incarnations.
    pub dropped_torn: u64,
    /// start/end/migration lines dropped from failed incarnations
    /// because the task re-executed in a surviving incarnation.
    pub dropped_superseded: u64,
    /// Later duplicate `spawn` lines dropped.
    pub dropped_dup_spawn: u64,
}

struct Line {
    t: u64,
    place: u32,
    epoch: u32,
    idx: usize,
    failed: bool,
    ev: String,
    task: Option<u64>,
    raw: String,
}

fn sort_key(l: &Line) -> (u64, u32, u32, usize) {
    (l.t, l.place, l.epoch, l.idx)
}

/// Merge incarnation traces into one validated-order JSONL string.
pub fn merge_traces(files: &[TraceFile]) -> (String, MergeStats) {
    let mut stats = MergeStats::default();
    let mut lines: Vec<Line> = Vec::new();
    for f in files {
        for (idx, raw) in f.text.lines().enumerate() {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            stats.lines_in += 1;
            let parsed = Value::parse(raw).ok();
            let (t, ev, task) = match &parsed {
                Some(v) => (
                    v.get("t").and_then(Value::as_u64),
                    v.get("ev").and_then(Value::as_str).map(str::to_string),
                    v.get("task").and_then(Value::as_u64),
                ),
                None => (None, None, None),
            };
            match (t, ev) {
                (Some(t), Some(ev)) => lines.push(Line {
                    t,
                    place: f.place,
                    epoch: f.epoch,
                    idx,
                    failed: f.failed,
                    ev,
                    task,
                    raw: raw.to_string(),
                }),
                _ if f.failed => stats.dropped_torn += 1,
                _ => lines.push(Line {
                    // Malformed line in a live trace: pass through so
                    // the validator reports it.
                    t: u64::MAX,
                    place: f.place,
                    epoch: f.epoch,
                    idx,
                    failed: false,
                    ev: String::new(),
                    task: None,
                    raw: raw.to_string(),
                }),
            }
        }
    }
    lines.sort_by_key(sort_key);

    // Which tasks started in a surviving incarnation?
    let mut live_started: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for l in &lines {
        if !l.failed && l.ev == "task_start" {
            if let Some(id) = l.task {
                live_started.insert(id);
            }
        }
    }

    let mut spawned: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut out = String::new();
    for l in &lines {
        if l.failed {
            if let Some(id) = l.task {
                let superseded = live_started.contains(&id)
                    && matches!(l.ev.as_str(), "task_start" | "task_end" | "migration");
                if superseded {
                    stats.dropped_superseded += 1;
                    continue;
                }
            }
        }
        if l.ev == "spawn" {
            if let Some(id) = l.task {
                if !spawned.insert(id) {
                    stats.dropped_dup_spawn += 1;
                    continue;
                }
            }
        }
        out.push_str(&l.raw);
        out.push('\n');
        stats.lines_out += 1;
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, w: u32, p: u32, kind: &str, task: Option<u64>) -> String {
        let mut o = Value::object();
        o.set("t", t);
        o.set("w", w);
        o.set("p", p);
        o.set("ev", kind);
        if let Some(id) = task {
            o.set("task", id);
        }
        o.render()
    }

    fn file(place: u32, epoch: u32, failed: bool, lines: &[String]) -> TraceFile {
        TraceFile {
            place,
            epoch,
            failed,
            text: lines.join("\n"),
        }
    }

    #[test]
    fn sorts_by_hlc_stamp_across_places() {
        let a = file(0, 0, false, &[ev(10, 0, 0, "spawn", Some(1))]);
        let b = file(1, 0, false, &[ev(5, 2, 1, "net_probe", None)]);
        let (out, stats) = merge_traces(&[a, b]);
        let first = out.lines().next().unwrap();
        assert!(first.contains("net_probe"), "{out}");
        assert_eq!(stats.lines_out, 2);
    }

    #[test]
    fn torn_tail_dropped_only_from_failed_incarnation() {
        let dead = file(
            1,
            0,
            true,
            &[
                ev(1, 2, 1, "task_start", Some(9)),
                "{\"t\":2,\"w\":2".to_string(),
            ],
        );
        let live = file(0, 0, false, &["also not json".to_string()]);
        let (out, stats) = merge_traces(&[dead, live]);
        assert_eq!(stats.dropped_torn, 1);
        assert!(out.contains("also not json"), "live garbage passes through");
    }

    #[test]
    fn reexecuted_task_keeps_only_surviving_execution() {
        let dead = file(
            1,
            0,
            true,
            &[
                ev(10, 2, 1, "task_start", Some(7)),
                ev(11, 2, 1, "task_end", Some(7)),
            ],
        );
        let live = file(
            2,
            0,
            false,
            &[
                ev(20, 4, 2, "task_start", Some(7)),
                ev(21, 4, 2, "task_end", Some(7)),
            ],
        );
        let (out, stats) = merge_traces(&[dead, live]);
        assert_eq!(stats.dropped_superseded, 2);
        assert_eq!(out.matches("task_start").count(), 1);
        assert_eq!(out.matches("task_end").count(), 1);
    }

    #[test]
    fn dead_execution_without_reexecution_is_kept() {
        // FinishDec landed before the crash: no re-injection, the dead
        // incarnation's execution is the real one.
        let dead = file(
            1,
            0,
            true,
            &[
                ev(10, 2, 1, "task_start", Some(7)),
                ev(11, 2, 1, "task_end", Some(7)),
            ],
        );
        let (out, stats) = merge_traces(&[dead]);
        assert_eq!(stats.dropped_superseded, 0);
        assert!(out.contains("task_start") && out.contains("task_end"));
    }

    #[test]
    fn duplicate_live_executions_are_preserved_for_the_validator() {
        let a = file(0, 0, false, &[ev(1, 0, 0, "task_start", Some(3))]);
        let b = file(1, 0, false, &[ev(2, 2, 1, "task_start", Some(3))]);
        let (out, _) = merge_traces(&[a, b]);
        assert_eq!(out.matches("task_start").count(), 2);
    }

    #[test]
    fn earliest_spawn_wins() {
        let dead = file(1, 0, true, &[ev(5, 2, 1, "spawn", Some(4))]);
        let live = file(0, 0, false, &[ev(9, 0, 0, "spawn", Some(4))]);
        let (out, stats) = merge_traces(&[dead, live]);
        assert_eq!(stats.dropped_dup_spawn, 1);
        assert_eq!(out.matches("spawn").count(), 1);
        assert!(out.contains("\"t\": 5") || out.contains("\"t\":5"), "{out}");
    }

    #[test]
    fn restarted_incarnations_interleave_by_epoch() {
        let e0 = file(1, 0, true, &[ev(10, 2, 1, "net_probe", None)]);
        let e1 = file(1, 1, false, &[ev(10, 2, 1, "net_probe", None)]);
        let (out, stats) = merge_traces(&[e1, e0]);
        assert_eq!(stats.lines_out, 2);
        assert_eq!(out.lines().count(), 2);
    }
}
