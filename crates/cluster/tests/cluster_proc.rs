//! Real-process cluster property tests (`harness = false`).
//!
//! This binary is both the test driver and the place executable: the
//! launcher re-execs it with `--place N ...`, exactly like `repro
//! cluster` re-execs `repro cluster-place`. Run via `cargo test -p
//! distws-cluster --test cluster_proc`.
//!
//! 1. `exactly_once_across_sigkill_restart` — 3 places over Unix
//!    sockets, one real SIGKILL at 150 ms and a restart at 500 ms:
//!    the run must complete, pass the happens-before validator and
//!    the conformance automaton on the merged trace, and the merged
//!    trace must show every spawned task starting exactly once.
//! 2. `doctored_duplicate_execution_rejected` — the negative control:
//!    duplicating a surviving `task_start`/`task_end` pair in that
//!    same merged trace must make the happens-before validator
//!    object. Without this, test 1's "0 violations" would also pass
//!    on a checker that checks nothing.
//!
//! (The wire-level duplicate-`TaskMigrate` drop has a unit test in
//! `place.rs`; this file covers the end-to-end, multi-process story.)

use distws_analyze::validate_str;
use distws_cluster::{run_cluster, run_place, KillSpec, LaunchConfig, PlaceConfig, Transport};
use std::collections::HashMap;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--place") {
        run_as_place(&args);
        return;
    }
    // libtest-compatible filtering is not needed; run both checks.
    let mut failed = 0;
    for (name, test) in [
        (
            "exactly_once_across_sigkill_restart",
            exactly_once_across_sigkill_restart as fn() -> Result<(), String>,
        ),
        (
            "doctored_duplicate_execution_rejected",
            doctored_duplicate_execution_rejected as fn() -> Result<(), String>,
        ),
    ] {
        match test() {
            Ok(()) => println!("test {name} ... ok"),
            Err(e) => {
                println!("test {name} ... FAILED\n  {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Hidden per-place entry point (same argv shape the launcher emits).
fn run_as_place(args: &[String]) {
    let mut cfg = PlaceConfig::new(0, 1, 2, PathBuf::from("."), "quicksort");
    let mut trace: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args[*i].clone()
        };
        match args[i].as_str() {
            "--place" => cfg.place = take(&mut i).parse().unwrap(),
            "--places" => cfg.places = take(&mut i).parse().unwrap(),
            "--wpp" => cfg.wpp = take(&mut i).parse().unwrap(),
            "--epoch" => cfg.epoch = take(&mut i).parse().unwrap(),
            "--transport" => {
                cfg.transport = match take(&mut i).as_str() {
                    "tcp" => Transport::Tcp,
                    _ => Transport::Unix,
                }
            }
            "--dir" => cfg.dir = PathBuf::from(take(&mut i)),
            "--app" => cfg.app = take(&mut i),
            "--policy" => cfg.policy = take(&mut i),
            "--seed" => cfg.seed = take(&mut i).parse().unwrap(),
            "--trace" => trace = Some(take(&mut i)),
            "--report" => cfg.report_path = Some(PathBuf::from(take(&mut i))),
            "--round-timeout-ms" => cfg.round_timeout_ms = take(&mut i).parse().unwrap(),
            "--run-deadline-ms" => cfg.run_deadline_ms = take(&mut i).parse().unwrap(),
            other => {
                eprintln!("cluster_proc place: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg.trace_path = trace.map(PathBuf::from).unwrap_or_else(|| {
        cfg.dir
            .join(format!("trace-p{}-e{}.jsonl", cfg.place, cfg.epoch))
    });
    match run_place(cfg) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("cluster_proc place: {e}");
            std::process::exit(2);
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("distws-cluster-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn launch_config(dir: PathBuf, kills: Vec<KillSpec>) -> LaunchConfig {
    LaunchConfig {
        app: "quicksort@64".to_string(),
        policy: "distws".to_string(),
        places: 3,
        wpp: 2,
        seed: 42,
        transport: Transport::Unix,
        dir,
        kills,
        round_timeout_ms: 120_000,
        run_deadline_ms: 120_000,
        exe: std::env::current_exe().unwrap(),
        place_args: Vec::new(),
    }
}

fn exactly_once_across_sigkill_restart() -> Result<(), String> {
    // A tiny run can finish before the 150 ms kill fires; retry until
    // the SIGKILL actually landed (the property is about surviving a
    // kill, not about fault-free runs — those are covered elsewhere).
    for attempt in 0..5 {
        let dir = fresh_dir(&format!("kill{attempt}"));
        let cfg = launch_config(
            dir.clone(),
            vec![KillSpec {
                place: 1,
                kill_ms: 150,
                restart_ms: Some(500),
            }],
        );
        let outcome = run_cluster(&cfg).map_err(|e| format!("launch failed: {e}"))?;
        if outcome.kills_delivered == 0 {
            continue; // run outran the kill; try again
        }
        if !outcome.ok() {
            return Err(format!(
                "run not ok: exit={} hb={:?} conform={:?}",
                outcome.exit_code, outcome.hb_violations, outcome.conform_violations
            ));
        }
        let merged = std::fs::read_to_string(&outcome.merged_path)
            .map_err(|e| format!("read merged: {e}"))?;
        check_exactly_once(&merged)?;
        let _ = std::fs::remove_dir_all(&dir);
        return Ok(());
    }
    Err("SIGKILL never landed in 5 attempts (runs too fast?)".to_string())
}

/// Every spawned task starts exactly once and ends exactly once in
/// the merged stream.
fn check_exactly_once(merged: &str) -> Result<(), String> {
    let mut spawned: HashMap<u64, u64> = HashMap::new();
    let mut started: HashMap<u64, u64> = HashMap::new();
    let mut ended: HashMap<u64, u64> = HashMap::new();
    for line in merged.lines() {
        let v = match distws_json::Value::parse(line) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let (Some(ev), Some(task)) = (
            v.get("ev").and_then(distws_json::Value::as_str),
            v.get("task").and_then(distws_json::Value::as_u64),
        ) else {
            continue;
        };
        let bucket = match ev {
            "spawn" => &mut spawned,
            "task_start" => &mut started,
            "task_end" => &mut ended,
            _ => continue,
        };
        *bucket.entry(task).or_insert(0) += 1;
    }
    if spawned.is_empty() {
        return Err("merged trace has no spawn events".to_string());
    }
    for (&id, &n) in &started {
        if n != 1 {
            return Err(format!("task {id} started {n} times in the merged trace"));
        }
    }
    for (&id, &n) in &ended {
        if n != 1 {
            return Err(format!("task {id} ended {n} times in the merged trace"));
        }
    }
    for &id in spawned.keys() {
        if !started.contains_key(&id) || !ended.contains_key(&id) {
            return Err(format!("spawned task {id} never ran to completion"));
        }
    }
    Ok(())
}

/// Doctor a clean merged trace by duplicating one task's
/// `task_start`/`task_end` pair (as if a re-execution had leaked
/// through the supersede rule) — the happens-before validator must
/// reject it.
fn doctored_duplicate_execution_rejected() -> Result<(), String> {
    let dir = fresh_dir("clean");
    let cfg = launch_config(dir.clone(), Vec::new());
    let outcome = run_cluster(&cfg).map_err(|e| format!("launch failed: {e}"))?;
    if !outcome.ok() {
        return Err(format!("clean run not ok: exit={}", outcome.exit_code));
    }
    let merged =
        std::fs::read_to_string(&outcome.merged_path).map_err(|e| format!("read merged: {e}"))?;
    let dup_target = merged
        .lines()
        .find(|l| l.contains("\"ev\":\"task_start\""))
        .ok_or("no task_start in merged trace")?
        .to_string();
    let task_field = dup_target
        .split("\"task\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .ok_or("no task id on the task_start line")?
        .to_string();
    let mut doctored = String::new();
    for line in merged.lines() {
        doctored.push_str(line);
        doctored.push('\n');
        // Replay the pair right after the original (same worker, so
        // the validator sees a double execution, not interleaving).
        if line.contains(&format!("\"task\":{task_field}"))
            && (line.contains("\"ev\":\"task_start\"") || line.contains("\"ev\":\"task_end\""))
        {
            doctored.push_str(line);
            doctored.push('\n');
        }
    }
    let report = validate_str(&doctored);
    let _ = std::fs::remove_dir_all(&dir);
    if report.violations.is_empty() {
        return Err(format!(
            "validator accepted a trace with task {task_field} executed twice"
        ));
    }
    Ok(())
}
