//! # distws-metrics
//!
//! Low-overhead self-profiling for the execution engines: monotonic
//! [`Counter`]s, high-water [`Gauge`]s, phase-sliced wall-clock timers
//! ([`Phase`]) and a peak-RSS probe — the measurement substrate the
//! `repro bench` harness records into `BENCH_*.json`.
//!
//! The design mirrors the trace layer's pay-for-what-you-use contract:
//! instrumentation sites go through a [`MetricsSink`] and are gated on
//! a cached `enabled()` bit, so a run with [`NullMetrics`] pays one
//! predictable branch per site and produces a report byte-identical to
//! an uninstrumented build (property-tested in `distws-bench`).
//!
//! Two kinds of data live here and must never be conflated:
//!
//! * **Deterministic**: counters and gauges are pure functions of the
//!   simulated execution — same seed, same values, asserted in CI.
//! * **Wall-clock**: phase timers and the RSS probe read the host
//!   clock and `/proc`; they vary run to run and machine to machine.
//!   [`MetricsSnapshot::to_json`] keeps them under separate keys so
//!   the determinism check can compare only the deterministic part.

#![forbid(unsafe_code)]

use distws_json::Value;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// A monotonic event counter. The catalog is closed (fixed array
/// storage, no allocation on the hot path) and every name is a stable
/// wire name in `BENCH_*.json` — append, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Events popped from the engine's queue and dispatched.
    EventsProcessed,
    /// Events pushed onto the engine's queue.
    EventQueuePushes,
    /// Events popped from the engine's queue (equals
    /// [`Counter::EventsProcessed`] in the simulator; kept separate so
    /// an engine with re-queueing can distinguish them).
    EventQueuePops,
    /// Task instances allocated.
    TasksAllocated,
    /// Deque buffer growths (private or shared) observed at push.
    DequeGrows,
    /// Steal attempts against co-located private deques (tier 0).
    StealAttemptsLocalPrivate,
    /// Steal attempts against the local shared deque (tier 1).
    StealAttemptsLocalShared,
    /// Steal attempts against remote shared deques (tier 2).
    StealAttemptsRemote,
    /// Successful tier-0 steals.
    StealSuccessesLocalPrivate,
    /// Successful tier-1 steals.
    StealSuccessesLocalShared,
    /// Tasks obtained by tier-2 steals (chunked steals count every
    /// task; lifeline pushes count here without a matching attempt).
    StealSuccessesRemote,
    /// Messages transmitted across places (including lost copies).
    MsgsSent,
    /// Messages lost in flight to fault injection.
    MsgsDropped,
    /// Retransmissions plus steal retries after timeouts.
    MsgsRetried,
}

impl Counter {
    /// Every counter, in stable serialization order.
    pub const ALL: [Counter; 14] = [
        Counter::EventsProcessed,
        Counter::EventQueuePushes,
        Counter::EventQueuePops,
        Counter::TasksAllocated,
        Counter::DequeGrows,
        Counter::StealAttemptsLocalPrivate,
        Counter::StealAttemptsLocalShared,
        Counter::StealAttemptsRemote,
        Counter::StealSuccessesLocalPrivate,
        Counter::StealSuccessesLocalShared,
        Counter::StealSuccessesRemote,
        Counter::MsgsSent,
        Counter::MsgsDropped,
        Counter::MsgsRetried,
    ];

    /// Number of counters in the catalog.
    pub const COUNT: usize = Self::ALL.len();

    /// Position in [`Counter::ALL`] (the storage index).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).unwrap()
    }

    /// Stable wire name (the `BENCH_*.json` key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsProcessed => "events_processed",
            Counter::EventQueuePushes => "event_queue_pushes",
            Counter::EventQueuePops => "event_queue_pops",
            Counter::TasksAllocated => "tasks_allocated",
            Counter::DequeGrows => "deque_grows",
            Counter::StealAttemptsLocalPrivate => "steal_attempts.local_private",
            Counter::StealAttemptsLocalShared => "steal_attempts.local_shared",
            Counter::StealAttemptsRemote => "steal_attempts.remote",
            Counter::StealSuccessesLocalPrivate => "steal_successes.local_private",
            Counter::StealSuccessesLocalShared => "steal_successes.local_shared",
            Counter::StealSuccessesRemote => "steal_successes.remote",
            Counter::MsgsSent => "msgs_sent",
            Counter::MsgsDropped => "msgs_dropped",
            Counter::MsgsRetried => "msgs_retried",
        }
    }

    /// The attempt counter of steal tier `i` (0 = local private,
    /// 1 = local shared, 2 = remote) — pairs with
    /// `distws_sched::StealStep::tier_index`.
    pub fn steal_attempts(tier: usize) -> Counter {
        match tier {
            0 => Counter::StealAttemptsLocalPrivate,
            1 => Counter::StealAttemptsLocalShared,
            2 => Counter::StealAttemptsRemote,
            other => panic!("no steal tier {other}"),
        }
    }

    /// The success counter of steal tier `i`.
    pub fn steal_successes(tier: usize) -> Counter {
        match tier {
            0 => Counter::StealSuccessesLocalPrivate,
            1 => Counter::StealSuccessesLocalShared,
            2 => Counter::StealSuccessesRemote,
            other => panic!("no steal tier {other}"),
        }
    }
}

/// A high-water-mark gauge: `record` keeps the maximum ever seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Deepest the engine's event queue ever got.
    EventQueueMaxDepth,
    /// Deepest any single private deque ever got.
    PrivateDequeMaxDepth,
    /// Deepest any single shared deque ever got.
    SharedDequeMaxDepth,
}

impl Gauge {
    /// Every gauge, in stable serialization order.
    pub const ALL: [Gauge; 3] = [
        Gauge::EventQueueMaxDepth,
        Gauge::PrivateDequeMaxDepth,
        Gauge::SharedDequeMaxDepth,
    ];

    /// Number of gauges in the catalog.
    pub const COUNT: usize = Self::ALL.len();

    /// Position in [`Gauge::ALL`] (the storage index).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|g| *g == self).unwrap()
    }

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::EventQueueMaxDepth => "event_queue_max_depth",
            Gauge::PrivateDequeMaxDepth => "private_deque_max_depth",
            Gauge::SharedDequeMaxDepth => "shared_deque_max_depth",
        }
    }
}

/// A wall-clock phase of engine execution. Phases nest (task execution
/// happens inside event dispatch); the recorder attributes time
/// *exclusively*, so the three phase totals partition the instrumented
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Popping events and running engine bookkeeping.
    EventDispatch,
    /// Executing application task bodies.
    TaskExecution,
    /// Emitting traces and telemetry (sink flushes, series sampling).
    TraceEmission,
}

impl Phase {
    /// Every phase, in stable serialization order.
    pub const ALL: [Phase; 3] = [
        Phase::EventDispatch,
        Phase::TaskExecution,
        Phase::TraceEmission,
    ];

    /// Number of phases in the catalog.
    pub const COUNT: usize = Self::ALL.len();

    /// Position in [`Phase::ALL`] (the storage index).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|p| *p == self).unwrap()
    }

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::EventDispatch => "event_dispatch",
            Phase::TaskExecution => "task_execution",
            Phase::TraceEmission => "trace_emission",
        }
    }
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// Receiver of engine self-metrics. Instrumentation sites are written
///
/// ```ignore
/// if self.metering {
///     self.metrics.add(Counter::EventsProcessed, 1);
/// }
/// ```
///
/// with `metering` a cached `enabled()`, exactly like the trace
/// layer's `TraceSink` — a disabled run pays one branch per site.
///
/// Sinks observe; they must never feed back into scheduling. The
/// engine upholds the contract that a metered run's `RunReport` is
/// byte-identical to a [`NullMetrics`] run.
pub trait MetricsSink {
    /// Whether callers should record at all. Sites must check this
    /// (or a cached copy) before calling the other methods.
    fn enabled(&self) -> bool {
        true
    }

    /// Increment a counter by `n`.
    fn add(&mut self, c: Counter, n: u64);

    /// Offer a gauge observation; the sink keeps the maximum.
    fn gauge_max(&mut self, g: Gauge, v: u64);

    /// Enter a wall-clock phase (phases nest; see [`Phase`]).
    fn phase_start(&mut self, _p: Phase) {}

    /// Leave the most recently entered phase (must be `p`).
    fn phase_end(&mut self, _p: Phase) {}

    /// Offer a time-series sample point at virtual time `t_ns`
    /// (recording sinks snapshot all counters for counter-track
    /// overlays; see `distws_trace::bridge`).
    fn sample(&mut self, _t_ns: u64) {}
}

/// Discards everything; `enabled()` is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&mut self, _c: Counter, _n: u64) {}

    fn gauge_max(&mut self, _g: Gauge, _v: u64) {}
}

/// One point of the in-run counter time series: every counter's value
/// at virtual time `t_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Virtual time of the sample (the telemetry grid instant).
    pub t_ns: u64,
    /// Counter values at that instant, indexed like [`Counter::ALL`].
    pub counters: Vec<u64>,
}

/// The recording sink: fixed arrays indexed by catalog position, an
/// exclusive-attribution phase stack, and an optional counter time
/// series on the engine's telemetry grid.
#[derive(Debug)]
pub struct EngineMetrics {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    phase_ns: [u64; Phase::COUNT],
    /// (phase, start of its current exclusive segment).
    stack: Vec<(Phase, Instant)>,
    samples: Vec<CounterSample>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineMetrics {
    /// A sink with all counters zero.
    pub fn new() -> Self {
        EngineMetrics {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            phase_ns: [0; Phase::COUNT],
            stack: Vec::with_capacity(4),
            samples: Vec::new(),
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Current value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// Exclusive wall-clock nanoseconds attributed to a phase so far.
    pub fn phase_ns(&self, p: Phase) -> u64 {
        self.phase_ns[p.index()]
    }

    /// The collected counter time series (one point per telemetry
    /// grid instant the engine sampled), oldest first.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Freeze into a serializable snapshot (counters, gauges, phases;
    /// the sample series stays on the sink for the trace bridge).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.to_vec(),
            gauges: self.gauges.to_vec(),
            phase_ns: self.phase_ns.to_vec(),
        }
    }
}

impl MetricsSink for EngineMetrics {
    fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    fn gauge_max(&mut self, g: Gauge, v: u64) {
        let slot = &mut self.gauges[g.index()];
        if v > *slot {
            *slot = v;
        }
    }

    fn phase_start(&mut self, p: Phase) {
        let now = Instant::now();
        // Close the parent's running segment: time up to here is the
        // parent's, not the nested phase's.
        if let Some((parent, since)) = self.stack.last_mut() {
            self.phase_ns[parent.index()] += since.elapsed().as_nanos() as u64;
            *since = now;
        }
        self.stack.push((p, now));
    }

    fn phase_end(&mut self, p: Phase) {
        let Some((top, since)) = self.stack.pop() else {
            panic!("phase_end({p:?}) with no open phase");
        };
        assert!(top == p, "phase_end({p:?}) while {top:?} is open");
        self.phase_ns[top.index()] += since.elapsed().as_nanos() as u64;
        // The parent resumes its own exclusive segment now.
        if let Some((_, since)) = self.stack.last_mut() {
            *since = Instant::now();
        }
    }

    fn sample(&mut self, t_ns: u64) {
        self.samples.push(CounterSample {
            t_ns,
            counters: self.counters.to_vec(),
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshot + JSON
// ---------------------------------------------------------------------------

/// A frozen view of the metrics at the end of a run — what a
/// `BENCH_*.json` cell embeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed like [`Counter::ALL`]. Deterministic.
    pub counters: Vec<u64>,
    /// Gauge values, indexed like [`Gauge::ALL`]. Deterministic.
    pub gauges: Vec<u64>,
    /// Exclusive phase times, indexed like [`Phase::ALL`]. Wall clock
    /// — NOT deterministic.
    pub phase_ns: Vec<u64>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: vec![0; Counter::COUNT],
            gauges: vec![0; Gauge::COUNT],
            phase_ns: vec![0; Phase::COUNT],
        }
    }
}

impl MetricsSnapshot {
    /// Value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// Exclusive wall-clock nanoseconds of a phase.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_ns[p.index()]
    }

    /// Deterministic JSON: `{"counters":{..},"gauges":{..},
    /// "phases_ns":{..}}` with catalog-ordered keys. The `counters`
    /// and `gauges` objects are the deterministic part; `phases_ns`
    /// is wall clock.
    pub fn to_json(&self) -> Value {
        let mut o = Value::object();
        let mut counters = Value::object();
        for c in Counter::ALL {
            counters.set(c.name(), self.counters[c.index()]);
        }
        o.set("counters", counters);
        let mut gauges = Value::object();
        for g in Gauge::ALL {
            gauges.set(g.name(), self.gauges[g.index()]);
        }
        o.set("gauges", gauges);
        let mut phases = Value::object();
        for p in Phase::ALL {
            phases.set(p.name(), self.phase_ns[p.index()]);
        }
        o.set("phases_ns", phases);
        o
    }

    /// Parse the [`Self::to_json`] shape back. Unknown keys are
    /// ignored and missing keys read as 0, so old snapshots survive
    /// catalog growth.
    pub fn from_json(v: &Value) -> Option<MetricsSnapshot> {
        let field = |section: &str, name: &str| {
            v.get(section)
                .and_then(|s| s.get(name))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        v.get("counters")?;
        Some(MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|c| field("counters", c.name()))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|g| field("gauges", g.name()))
                .collect(),
            phase_ns: Phase::ALL
                .iter()
                .map(|p| field("phases_ns", p.name()))
                .collect(),
        })
    }

    /// The fixed-width counter/gauge/phase table `diag metrics` and
    /// `repro bench` print. Output is pinned by a fixture test.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<34} {:>14}\n", "counter", "value"));
        for c in Counter::ALL {
            out.push_str(&format!("{:<34} {:>14}\n", c.name(), self.counter(c)));
        }
        out.push_str(&format!("{:<34} {:>14}\n", "gauge", "value"));
        for g in Gauge::ALL {
            out.push_str(&format!("{:<34} {:>14}\n", g.name(), self.gauge(g)));
        }
        out.push_str(&format!("{:<34} {:>14}\n", "phase (wall ns)", "value"));
        for p in Phase::ALL {
            out.push_str(&format!("{:<34} {:>14}\n", p.name(), self.phase(p)));
        }
        out
    }
}

impl distws_json::ToJson for MetricsSnapshot {
    fn to_json(&self) -> Value {
        MetricsSnapshot::to_json(self)
    }
}

// ---------------------------------------------------------------------------
// Peak RSS
// ---------------------------------------------------------------------------

/// Peak resident set size of this process in KiB, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` where the procfs
/// field is unavailable (non-Linux hosts) — callers record 0.
///
/// Note the value is a process-wide high-water mark: in a multi-cell
/// bench run, later cells inherit the peak of earlier ones.
pub fn peak_rss_kb() -> Option<u64> {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Extract `VmHWM` (in KiB) from `/proc/self/status` text.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_indices_are_their_positions() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn null_metrics_is_disabled() {
        assert!(!NullMetrics.enabled());
        assert!(EngineMetrics::new().enabled());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = EngineMetrics::new();
        m.add(Counter::EventsProcessed, 3);
        m.add(Counter::EventsProcessed, 2);
        m.gauge_max(Gauge::EventQueueMaxDepth, 7);
        m.gauge_max(Gauge::EventQueueMaxDepth, 4);
        assert_eq!(m.counter(Counter::EventsProcessed), 5);
        assert_eq!(m.gauge(Gauge::EventQueueMaxDepth), 7);
        assert_eq!(m.counter(Counter::MsgsSent), 0);
    }

    #[test]
    fn nested_phases_attribute_exclusively() {
        let mut m = EngineMetrics::new();
        m.phase_start(Phase::EventDispatch);
        m.phase_start(Phase::TaskExecution);
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.phase_end(Phase::TaskExecution);
        m.phase_end(Phase::EventDispatch);
        assert!(m.phase_ns(Phase::TaskExecution) >= 1_000_000);
        // Dispatch got only the (tiny) time outside the nested phase.
        assert!(m.phase_ns(Phase::EventDispatch) < m.phase_ns(Phase::TaskExecution));
    }

    #[test]
    #[should_panic(expected = "phase_end")]
    fn mismatched_phase_end_panics() {
        let mut m = EngineMetrics::new();
        m.phase_start(Phase::EventDispatch);
        m.phase_end(Phase::TaskExecution);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let mut m = EngineMetrics::new();
        m.add(Counter::TasksAllocated, 42);
        m.add(Counter::StealSuccessesRemote, 9);
        m.gauge_max(Gauge::SharedDequeMaxDepth, 13);
        let snap = m.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.to_json().render(), snap.to_json().render());
        assert!(snap.to_json().render().starts_with("{\"counters\":{"));
    }

    #[test]
    fn samples_capture_counter_values() {
        let mut m = EngineMetrics::new();
        m.add(Counter::EventsProcessed, 1);
        m.sample(100);
        m.add(Counter::EventsProcessed, 1);
        m.sample(200);
        assert_eq!(m.samples().len(), 2);
        assert_eq!(m.samples()[0].counters[Counter::EventsProcessed.index()], 1);
        assert_eq!(m.samples()[1].counters[Counter::EventsProcessed.index()], 2);
    }

    #[test]
    fn vm_hwm_parses() {
        let status = "Name:\tx\nVmPeak:\t  999 kB\nVmHWM:\t   12345 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(12_345));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
    }

    #[test]
    fn peak_rss_reads_procfs_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("/proc/self/status has VmHWM on Linux");
            assert!(kb > 0);
        }
    }

    #[test]
    fn render_table_is_pinned() {
        let mut m = EngineMetrics::new();
        m.add(Counter::EventsProcessed, 12);
        m.gauge_max(Gauge::EventQueueMaxDepth, 3);
        let table = m.snapshot().render_table();
        assert!(table.contains("events_processed                               12\n"));
        assert!(table.contains("event_queue_max_depth                           3\n"));
    }
}
