//! Selection-order pinning for the O(1) victim bookkeeping.
//!
//! The cached, allocation-free steal path ([`Policy::steal_sequence_into`]
//! with precomputed per-place victim lists and an in-place stable sort)
//! must produce byte-identical sequences to a straightforward reference
//! implementation of the old per-round logic — for **all six policies**
//! on fixed seeds, across many rounds and thieves, including the
//! backoff and status-board truncation interactions.

use distws_core::rng::SplitMix64;
use distws_core::{ClusterConfig, GlobalWorkerId, PlaceId};
use distws_sched::protocol;
use distws_sched::view::StaticView;
use distws_sched::{
    AdaptiveWs, ClusterView, DistWs, DistWsNs, LifelineWs, Policy, RandomWs, StealStep,
    VictimOrder, X10Ws,
};

/// The pre-cache remote tail: allocate-and-sort per round, exactly as
/// `push_remote_visits` used to do it.
fn reference_remote_tail(
    from: PlaceId,
    view: &dyn ClusterView,
    order: VictimOrder,
    budget: usize,
    rng: &mut SplitMix64,
) -> Vec<StealStep> {
    let mut victims = order.victims(from, view.config().places, rng);
    victims.sort_by_key(|p| std::cmp::Reverse(view.shared_len(*p)));
    let loaded = victims.iter().filter(|p| view.shared_len(**p) > 0).count();
    let keep = (loaded + 2).min(budget);
    let mut steps = Vec::new();
    for victim in victims.into_iter().take(keep) {
        steps.extend(protocol::remote_visit(victim));
    }
    steps
}

/// A view with an uneven shared-deque profile so the status-board sort
/// actually reorders victims (including equal-length ties).
fn bumpy_view(places: u32, workers: u32, seed: u64) -> StaticView {
    let mut v = StaticView::saturated(ClusterConfig::new(places, workers));
    let mut rng = SplitMix64::new(seed);
    v.shared = (0..places).map(|_| rng.below(4) as usize).collect();
    v
}

/// Drive a policy for `rounds` steal rounds and return every sequence,
/// mutating backoff state between rounds like the engine does.
fn rounds_of(
    p: &mut dyn Policy,
    view: &dyn ClusterView,
    seed: u64,
    rounds: usize,
) -> Vec<Vec<StealStep>> {
    let mut rng = SplitMix64::new(seed);
    let workers = view.config().total_workers();
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for r in 0..rounds {
        let thief = GlobalWorkerId((r % workers as usize) as u32);
        p.steal_sequence_into(thief, view, &mut rng, &mut buf);
        p.note_result(thief, r % 3 == 0);
        out.push(buf.clone());
    }
    out
}

#[test]
fn distws_matches_reference_implementation() {
    for order in [VictimOrder::Random, VictimOrder::NearestFirstRing] {
        for seed in [1u64, 7, 42] {
            let view = bumpy_view(8, 2, seed);
            let mut p = DistWs::with_victim_order(order);
            let mut rng = SplitMix64::new(seed);
            let mut ref_rng = SplitMix64::new(seed);
            let mut buf = Vec::new();
            for round in 0..64 {
                let thief = GlobalWorkerId((round % 16) as u32);
                p.steal_sequence_into(thief, &view, &mut rng, &mut buf);
                // Reference: full local prefix + allocate-and-sort tail
                // with the same backoff budget trajectory.
                let budget = match round / 16 {
                    0 => 8usize, // fresh thieves: full sweep
                    1 => 4,      // one dry round each
                    _ => 2,      // two or more
                };
                let place = view.config().place_of(thief);
                let mut want = protocol::local_steps().to_vec();
                want.extend(reference_remote_tail(
                    place,
                    &view,
                    order,
                    budget,
                    &mut ref_rng,
                ));
                assert_eq!(buf, want, "order {order:?} seed {seed} round {round}");
                p.note_result(thief, false);
            }
        }
    }
}

#[test]
fn all_six_policies_steal_sequence_equals_into() {
    // `steal_sequence` and `steal_sequence_into` must consume identical
    // rng draws and produce identical steps, for every policy, from
    // identical starting state.
    let view = bumpy_view(8, 2, 99);
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
        Box::new(LifelineWs::default()),
        Box::new(AdaptiveWs::default()),
    ];
    for p in policies {
        let mut a = p.clone_box();
        let mut b = p.clone_box();
        let mut rng_a = SplitMix64::new(0xBEEF);
        let mut rng_b = SplitMix64::new(0xBEEF);
        let mut buf = Vec::new();
        for round in 0..48 {
            let thief = GlobalWorkerId((round % 16) as u32);
            let vec_path = a.steal_sequence(thief, &view, &mut rng_a);
            b.steal_sequence_into(thief, &view, &mut rng_b, &mut buf);
            assert_eq!(vec_path, buf, "{} round {round}", p.name());
            assert_eq!(rng_a, rng_b, "{} rng drift at round {round}", p.name());
            let found = round % 5 == 0;
            a.note_result(thief, found);
            b.note_result(thief, found);
        }
    }
}

#[test]
fn selection_order_pinned_on_fixed_seed() {
    // Literal pin of the DistWS victim order on a fixed seed: catches
    // any change to the shuffle draws, the status-board sort, or the
    // truncation rule, in either steal path.
    let mut view = bumpy_view(6, 2, 5);
    view.shared = vec![0, 2, 0, 2, 1, 0];
    let mut p = DistWs::default();
    let mut rng = SplitMix64::new(1234);
    let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
    let victims: Vec<u32> = seq
        .iter()
        .filter_map(|s| match s {
            StealStep::StealRemoteShared(v) => Some(v.0),
            _ => None,
        })
        .collect();
    // Loaded places (1, 3 — shuffle decides the tie — then 4) first,
    // then 2 staleness probes into the empty ones.
    let mut ref_rng = SplitMix64::new(1234);
    let want = reference_remote_tail(PlaceId(0), &view, VictimOrder::Random, 6, &mut ref_rng);
    let want_victims: Vec<u32> = want
        .iter()
        .filter_map(|s| match s {
            StealStep::StealRemoteShared(v) => Some(v.0),
            _ => None,
        })
        .collect();
    assert_eq!(victims, want_victims);
    assert_eq!(victims.len(), 5, "3 loaded + 2 staleness probes");
    assert_eq!(&victims[..3], &[1, 3, 4], "descending shared_len first");
}

#[test]
fn cache_survives_cluster_size_change() {
    // A cloned policy re-used against a different cluster size must
    // rebuild its cached lists, not index stale ones.
    let mut p = DistWs::default();
    let small = bumpy_view(4, 2, 3);
    let big = bumpy_view(12, 2, 3);
    let mut rng = SplitMix64::new(9);
    let mut buf = Vec::new();
    p.steal_sequence_into(GlobalWorkerId(0), &small, &mut rng, &mut buf);
    p.steal_sequence_into(GlobalWorkerId(0), &big, &mut rng, &mut buf);
    let victims: Vec<u32> = buf
        .iter()
        .filter_map(|s| match s {
            StealStep::StealRemoteShared(v) => Some(v.0),
            _ => None,
        })
        .collect();
    assert!(victims.iter().all(|v| *v < 12 && *v != 0));
}

#[test]
fn repeated_rounds_are_deterministic_across_clones() {
    // Two clones of each policy driven identically stay identical —
    // i.e. the cache and scratch reuse carry no hidden order state.
    let view = bumpy_view(8, 2, 11);
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
        Box::new(LifelineWs::default()),
        Box::new(AdaptiveWs::default()),
    ];
    for p in policies {
        let mut a = p.clone_box();
        let mut b = p.clone_box();
        assert_eq!(
            rounds_of(a.as_mut(), &view, 77, 64),
            rounds_of(b.as_mut(), &view, 77, 64),
            "{}",
            p.name()
        );
    }
}
