//! **AdaptiveWS** — runtime locality classification (the paper's
//! "computed on the fly" alternative, §II).
//!
//! The paper's prototype relies on programmer annotations but notes
//! that the attributes characterising locality-flexibility — task
//! granularity, the amount of data a task references, remote-access
//! overheads — "can be derived a priori through static analyses, or can
//! be computed on the fly as the program is executing". This policy
//! implements the on-the-fly variant: it *ignores* the annotation and
//! classifies each task at mapping time from attributes a profiling
//! runtime would have:
//!
//! * a task is treated as flexible when its estimated compute time
//!   exceeds `profit_factor ×` the modelled cost of migrating it
//!   (round-trip latency + footprint transfer) — i.e. when a steal
//!   would pay for itself (§II condition (c)/(d));
//! * everything else is pinned like a sensitive task.
//!
//! The `adaptive` experiment in `distws-bench` compares this policy
//! against annotation-driven DistWS across the whole suite — measuring
//! how much of the annotation's benefit a profile-guided runtime can
//! recover, and what it loses on tasks whose *semantic* affinity
//! (copy-back requirements, follow-up accesses) is invisible to cost
//! heuristics.

use crate::policies::ChunkPolicy;
use crate::view::{ClusterView, DequeChoice, StealStep, TaskMeta};
use crate::Policy;
use distws_core::rng::SplitMix64;
use distws_core::{CostModel, GlobalWorkerId, Locality};

/// Runtime-classified selective distributed work stealing.
#[derive(Debug, Clone)]
pub struct AdaptiveWs {
    /// Cost model used to estimate migration cost (should match the
    /// engine's).
    pub cost: CostModel,
    /// A task is flexible when `est_cost ≥ profit_factor × migration
    /// cost`.
    pub profit_factor: u64,
    /// Distributed-steal chunking.
    pub chunk_policy: ChunkPolicy,
    inner: crate::policies::DistWs,
}

impl Default for AdaptiveWs {
    fn default() -> Self {
        AdaptiveWs {
            cost: CostModel::default(),
            profit_factor: 4,
            chunk_policy: ChunkPolicy::Fixed(2),
            inner: crate::policies::DistWs::default(),
        }
    }
}

impl AdaptiveWs {
    /// The classification heuristic: would stealing this task pay for
    /// itself by at least `profit_factor`?
    pub fn classify(&self, est_cost_ns: u64, footprint_bytes: u64) -> Locality {
        let migration = self.cost.migration_ns(footprint_bytes);
        if est_cost_ns >= self.profit_factor * migration {
            Locality::Flexible
        } else {
            Locality::Sensitive
        }
    }
}

impl Policy for AdaptiveWs {
    fn name(&self) -> &'static str {
        "AdaptiveWS"
    }

    fn map_task(
        &mut self,
        meta: &TaskMeta,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> DequeChoice {
        // Re-classify from runtime-observable attributes, ignoring the
        // programmer's annotation, then apply Algorithm 1's mapping.
        let reclassified = TaskMeta {
            locality: self.classify(meta.est_cost_ns, meta.footprint_bytes),
            ..*meta
        };
        self.inner.map_task(&reclassified, view, rng)
    }

    fn steal_sequence(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep> {
        self.inner.steal_sequence(thief, view, rng)
    }

    fn steal_sequence_into(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        self.inner.steal_sequence_into(thief, view, rng, out);
    }

    fn may_migrate(&self, _locality: Locality) -> bool {
        // The annotation is deliberately overridden: whatever the
        // heuristic pooled in a shared deque is fair game. Remote-
        // reference and copy-back costs of misclassified tasks are
        // charged by the engine — that *is* the experiment.
        true
    }

    fn remote_chunk(&self) -> usize {
        self.chunk_policy.amount(2)
    }

    fn remote_chunk_for(&self, victim_len: usize) -> usize {
        self.chunk_policy.amount(victim_len)
    }

    fn note_result(&mut self, thief: GlobalWorkerId, found: bool) {
        self.inner.note_result(thief, found);
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::StaticView;
    use distws_core::{ClusterConfig, PlaceId};

    #[test]
    fn classification_follows_profitability() {
        let p = AdaptiveWs::default();
        let migration_empty = p.cost.migration_ns(0);
        // Coarse, data-free task: flexible.
        assert_eq!(p.classify(100 * migration_empty, 0), Locality::Flexible);
        // Tiny task: sensitive.
        assert_eq!(p.classify(migration_empty / 2, 0), Locality::Sensitive);
        // Coarse but data-heavy: the footprint pushes migration cost up.
        let heavy_bytes = 100 << 20;
        assert_eq!(
            p.classify(100 * migration_empty, heavy_bytes),
            Locality::Sensitive,
            "100 MiB footprint must not be worth a 100×-empty-migration task"
        );
    }

    #[test]
    fn annotation_is_ignored() {
        let mut p = AdaptiveWs::default();
        let cfg = ClusterConfig::new(2, 2);
        let view = StaticView::saturated(cfg);
        let mut rng = SplitMix64::new(1);
        // Programmer says Sensitive, heuristic says coarse-and-free:
        // maps to the shared deque anyway (saturated place).
        let meta = TaskMeta {
            est_cost_ns: 1_000_000_000,
            footprint_bytes: 0,
            ..TaskMeta::basic(PlaceId(0), Locality::Sensitive, PlaceId(0))
        };
        assert_eq!(p.map_task(&meta, &view, &mut rng), DequeChoice::Shared);
        // Programmer says Flexible, heuristic says too fine: private.
        let meta = TaskMeta {
            est_cost_ns: 100,
            footprint_bytes: 0,
            ..TaskMeta::basic(PlaceId(0), Locality::Flexible, PlaceId(0))
        };
        assert_eq!(p.map_task(&meta, &view, &mut rng), DequeChoice::Private);
    }

    #[test]
    fn migrates_anything_it_pooled() {
        let p = AdaptiveWs::default();
        assert!(p.may_migrate(Locality::Sensitive));
        assert!(p.may_migrate(Locality::Flexible));
    }
}
