//! Timeout/backoff policy for remote steal probes.
//!
//! On a reliable interconnect a steal probe always answers, so the
//! thief can block on the reply. Under loss or place failure the reply
//! may never come: the thief waits [`RetryPolicy::timeout_ns`], then
//! either retries the same victim after an exponential backoff with
//! jitter (while its retry budget lasts) or falls through to the next
//! victim in the steal order. The same policy is shared by the
//! discrete-event simulator (virtual time) and the threaded runtime
//! (wall-clock time) so both degrade the same way.

use crate::protocol::STEAL_RETRY_BUDGET;
use distws_core::SplitMix64;

/// Timeout, backoff and retry-budget parameters for one remote probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long a thief waits for a steal reply before declaring the
    /// probe lost. Should comfortably exceed one network round trip.
    pub timeout_ns: u64,
    /// Backoff before retry `n` is `base << (n-1)`, capped at
    /// [`Self::backoff_max_ns`].
    pub backoff_base_ns: u64,
    /// Upper bound on the exponential backoff.
    pub backoff_max_ns: u64,
    /// Uniform random extra `[0, jitter_ns]` added to every backoff so
    /// synchronized thieves don't re-collide.
    pub jitter_ns: u64,
    /// Retries against the *same* victim after the first timeout
    /// before giving up and moving to the next victim. 0 disables
    /// retrying (timeout once, move on).
    pub budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Tuned to the default CostModel: one-way latency 5 µs, so a
        // probe round trip is ~10 µs; time out at 3× that.
        RetryPolicy {
            timeout_ns: 30_000,
            backoff_base_ns: 10_000,
            backoff_max_ns: 160_000,
            jitter_ns: 5_000,
            budget: STEAL_RETRY_BUDGET,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retry `attempt` (1-based): exponential in
    /// the attempt number, capped, plus uniform jitter drawn from
    /// `rng`. Draws from `rng` only when `jitter_ns > 0`.
    pub fn backoff_ns(&self, attempt: u32, rng: &mut SplitMix64) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self
            .backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.backoff_max_ns);
        let jitter = if self.jitter_ns > 0 {
            rng.below(self.jitter_ns + 1)
        } else {
            0
        };
        exp + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            jitter_ns: 0,
            ..Default::default()
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(p.backoff_ns(1, &mut rng), 10_000);
        assert_eq!(p.backoff_ns(2, &mut rng), 20_000);
        assert_eq!(p.backoff_ns(3, &mut rng), 40_000);
        assert_eq!(p.backoff_ns(10, &mut rng), 160_000, "capped");
        assert_eq!(p.backoff_ns(64, &mut rng), 160_000, "shift saturates");
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let p = RetryPolicy::default();
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for attempt in 1..=6u32 {
            let x = p.backoff_ns(attempt, &mut a);
            let y = p.backoff_ns(attempt, &mut b);
            assert_eq!(x, y, "same seed, same backoff");
            let exp = (p.backoff_base_ns << (attempt - 1)).min(p.backoff_max_ns);
            assert!((exp..=exp + p.jitter_ns).contains(&x));
        }
    }

    #[test]
    fn zero_jitter_draws_nothing() {
        let p = RetryPolicy {
            jitter_ns: 0,
            ..Default::default()
        };
        let mut rng = SplitMix64::new(3);
        let before = rng.clone();
        let _ = p.backoff_ns(2, &mut rng);
        assert_eq!(rng, before, "no random draw without jitter");
    }

    #[test]
    fn huge_base_cannot_overflow_past_the_cap() {
        // A pathological base would overflow `base << shift` long
        // before the cap applied; saturating_mul must clamp instead.
        let p = RetryPolicy {
            backoff_base_ns: u64::MAX / 2,
            backoff_max_ns: u64::MAX - 1,
            jitter_ns: 1,
            ..Default::default()
        };
        let mut rng = SplitMix64::new(9);
        for attempt in [1, 2, 33, 100, u32::MAX] {
            let b = p.backoff_ns(attempt, &mut rng);
            // A wrapping multiply would collapse the delay to ~0;
            // saturation keeps it at least the base, and from the
            // first doubling onward pinned at the cap.
            assert!(b >= p.backoff_base_ns, "attempt {attempt} wrapped: {b}");
            if attempt >= 2 {
                assert!(
                    b >= p.backoff_max_ns,
                    "attempt {attempt} under-backed-off: {b}"
                );
            }
        }
    }

    #[test]
    fn max_backoff_clamp_is_exact_at_the_boundary() {
        // The cap applies the moment the doubling crosses it — not one
        // attempt later.
        let p = RetryPolicy {
            backoff_base_ns: 10_000,
            backoff_max_ns: 35_000, // between attempt 2 (20k) and 3 (40k)
            jitter_ns: 0,
            ..Default::default()
        };
        let mut rng = SplitMix64::new(5);
        assert_eq!(p.backoff_ns(2, &mut rng), 20_000, "below the cap: exact");
        assert_eq!(p.backoff_ns(3, &mut rng), 35_000, "first capped attempt");
        assert_eq!(p.backoff_ns(4, &mut rng), 35_000, "stays at the cap");
    }

    #[test]
    fn jitter_streams_differ_across_seeds_but_replay_within_one() {
        let p = RetryPolicy::default();
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = SplitMix64::new(seed);
            (1..=8u32).map(|a| p.backoff_ns(a, &mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "fixed seed replays exactly");
        assert_ne!(
            draw(42),
            draw(43),
            "different seeds must desynchronize thieves"
        );
    }

    #[test]
    fn budget_zero_means_no_retry_budget_consumed() {
        // budget counts retries *after* the first timeout; a zero
        // budget still permits the initial attempt, so the backoff for
        // attempt 1 must be well-defined (the engine asks for it when
        // deciding whether to re-queue).
        let p = RetryPolicy {
            budget: 0,
            jitter_ns: 0,
            ..Default::default()
        };
        let mut rng = SplitMix64::new(11);
        assert_eq!(p.backoff_ns(1, &mut rng), p.backoff_base_ns);
    }
}
