//! The concrete policies: X10WS (baseline), DistWS (the paper's
//! contribution), DistWS-NS (non-selective ablation) and RandomWS
//! (randomized distributed stealing used in the §X UTS comparison).

use crate::protocol;
use crate::view::{ClusterView, DequeChoice, StealStep, TaskMeta};
use crate::Policy;
use distws_core::rng::SplitMix64;
use distws_core::{GlobalWorkerId, Locality, PlaceId};

/// Order in which a thief visits remote victim places.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimOrder {
    /// Random permutation per steal round (default; matches DistWS's
    /// "explore all available places" on a switched fabric).
    Random,
    /// Nearest-first on a ring: places at ring distance 1, 2, … — the
    /// ordering the paper's footnote 2 recommends for sparse fabrics.
    NearestFirstRing,
}

impl VictimOrder {
    /// Remote places in visiting order for a thief at `from`.
    pub fn victims(self, from: PlaceId, places: u32, rng: &mut SplitMix64) -> Vec<PlaceId> {
        let mut others: Vec<PlaceId> = (0..places).map(PlaceId).filter(|p| *p != from).collect();
        match self {
            VictimOrder::Random => rng.shuffle(&mut others),
            VictimOrder::NearestFirstRing => {
                others.sort_by_key(|p| {
                    let d = from.0.abs_diff(p.0);
                    (d.min(places - d), p.0)
                });
            }
        }
        others
    }
}

/// How many tasks a distributed steal takes from the victim's shared
/// deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// A fixed number of tasks (the paper's DistWS uses 2).
    Fixed(usize),
    /// Half of the victim's deque (Olivier & Prins' StealHalf, the
    /// §V.B.3 comparison).
    Half,
}

impl ChunkPolicy {
    /// Tasks to take from a victim holding `victim_len` tasks.
    pub fn amount(self, victim_len: usize) -> usize {
        match self {
            ChunkPolicy::Fixed(n) => n,
            ChunkPolicy::Half => (victim_len / 2).max(1),
        }
    }
}

/// Per-thief consecutive-failure counters driving steal backoff.
#[derive(Debug, Clone, Default)]
struct FailBackoff {
    fails: Vec<u32>,
}

impl FailBackoff {
    /// Remote victims to probe this round: the full sweep while work
    /// was recently found, shrinking quickly over consecutive dry
    /// rounds (the thief keeps rotating via the random permutation, it
    /// just stops paying a full cluster sweep when the system is
    /// quiescent or only trickling work).
    fn budget(&self, thief: GlobalWorkerId, places: u32) -> usize {
        match self.fails.get(thief.index()).copied().unwrap_or(0) {
            0 => places as usize,
            1 => 4,
            _ => 2,
        }
    }

    fn note(&mut self, thief: GlobalWorkerId, found: bool) {
        let i = thief.index();
        if self.fails.len() <= i {
            self.fails.resize(i + 1, 0);
        }
        self.fails[i] = if found {
            0
        } else {
            self.fails[i].saturating_add(1)
        };
    }
}

/// Precomputed victim bookkeeping: the "every place but mine" base
/// lists (and their ring-distance-sorted variants) are built once per
/// cluster size, and one reusable scratch buffer replaces the per-round
/// collect + sort of [`VictimOrder::victims`]. The randomized order
/// performs the exact same Fisher–Yates draws over the exact same base
/// list, so steal sequences are unchanged byte for byte (pinned against
/// a reference implementation in `tests/victim_order.rs`).
#[derive(Debug, Clone, Default)]
struct VictimCache {
    places: u32,
    /// `base[from]` = all other places in ascending id order.
    base: Vec<Vec<PlaceId>>,
    /// `ring[from]` = all other places by ring distance, then id.
    ring: Vec<Vec<PlaceId>>,
    /// Per-round `(shared_len, place)` working buffer.
    scratch: Vec<(usize, PlaceId)>,
}

impl VictimCache {
    fn ensure(&mut self, places: u32) {
        if self.places == places && !self.base.is_empty() {
            return;
        }
        self.places = places;
        let others = |from: u32| (0..places).map(PlaceId).filter(move |p| p.0 != from);
        self.base = (0..places).map(|from| others(from).collect()).collect();
        self.ring = (0..places)
            .map(|from| {
                let mut v: Vec<PlaceId> = others(from).collect();
                v.sort_by_key(|p| {
                    let d = from.abs_diff(p.0);
                    (d.min(places - d), p.0)
                });
                v
            })
            .collect();
    }
}

/// Append the distributed-stealing tail of Algorithm 1 (lines 18–29):
/// visit up to `budget` remote places' shared deques, re-probing the
/// network after every failed attempt.
fn push_remote_visits(
    steps: &mut Vec<StealStep>,
    from: PlaceId,
    view: &dyn ClusterView,
    order: VictimOrder,
    budget: usize,
    rng: &mut SplitMix64,
    cache: &mut VictimCache,
) {
    cache.ensure(view.config().places);
    let VictimCache {
        base,
        ring,
        scratch,
        ..
    } = cache;
    let list = match order {
        VictimOrder::Random => &base[from.0 as usize],
        VictimOrder::NearestFirstRing => &ring[from.0 as usize],
    };
    scratch.clear();
    scratch.extend(list.iter().map(|p| (0usize, *p)));
    if order == VictimOrder::Random {
        // Same draws, same swaps as shuffling the bare place list.
        rng.shuffle(scratch);
    }
    for e in scratch.iter_mut() {
        e.0 = view.shared_len(e.1);
    }
    // §VI.B: every place maintains a status object that lets thieves
    // "identify idle or lightly-loaded places" — so probe the places
    // with visibly pooled work first, and don't pay round trips to
    // places the status board already shows empty beyond a small
    // staleness allowance. In-place insertion sort, descending: an
    // element only moves left past *strictly smaller* keys, which is
    // exactly the stable `sort_by_key(Reverse(len))` order.
    for i in 1..scratch.len() {
        let mut j = i;
        while j > 0 && scratch[j - 1].0 < scratch[j].0 {
            scratch.swap(j - 1, j);
            j -= 1;
        }
    }
    let loaded = scratch.iter().filter(|(len, _)| *len > 0).count();
    let keep = (loaded + 2).min(budget);
    for &(_, victim) in scratch.iter().take(keep) {
        // Lines 22–27 + the line 19 re-probe after a failed attempt.
        steps.extend(protocol::remote_visit(victim));
    }
}

// ---------------------------------------------------------------------------
// X10WS
// ---------------------------------------------------------------------------

/// X10's shipped scheduler (§III): help-first work stealing confined to
/// a place. Every task goes to a private deque; idle workers steal only
/// from co-located workers. No shared deques, no cross-place stealing,
/// no mapping overhead.
#[derive(Debug, Clone, Default)]
pub struct X10Ws;

impl Policy for X10Ws {
    fn name(&self) -> &'static str {
        "X10WS"
    }

    fn map_task(
        &mut self,
        _meta: &TaskMeta,
        _view: &dyn ClusterView,
        _rng: &mut SplitMix64,
    ) -> DequeChoice {
        DequeChoice::Private
    }

    fn steal_sequence(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep> {
        let mut out = Vec::new();
        self.steal_sequence_into(thief, view, rng, &mut out);
        out
    }

    fn steal_sequence_into(
        &mut self,
        _thief: GlobalWorkerId,
        _view: &dyn ClusterView,
        _rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        // Lines 9–13 only: X10WS never consults the shared deque or the
        // network beyond the inbox probe.
        out.clear();
        out.extend_from_slice(&protocol::local_steps()[..3]);
    }

    fn may_migrate(&self, _locality: Locality) -> bool {
        false
    }

    fn remote_chunk(&self) -> usize {
        1
    }

    fn has_mapping_overhead(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// DistWS
// ---------------------------------------------------------------------------

/// The paper's scheduler: selective distributed work-stealing on
/// locality-flexible tasks (Algorithm 1).
#[derive(Debug, Clone)]
pub struct DistWs {
    /// Remote victim visiting order.
    pub victim_order: VictimOrder,
    /// Tasks per distributed steal (paper: fixed 2).
    pub chunk_policy: ChunkPolicy,
    /// Algorithm 1 line 5: map flexible tasks to a *private* deque on
    /// idle/under-utilized places. Disable for the mapping-rule
    /// ablation (flexible tasks then always go to the shared deque).
    pub respect_utilization: bool,
    backoff: FailBackoff,
    cache: VictimCache,
}

impl Default for DistWs {
    fn default() -> Self {
        DistWs {
            victim_order: VictimOrder::Random,
            chunk_policy: ChunkPolicy::Fixed(protocol::REMOTE_STEAL_CHUNK),
            respect_utilization: true,
            backoff: FailBackoff::default(),
            cache: VictimCache::default(),
        }
    }
}

impl DistWs {
    /// DistWS with a non-default fixed remote chunk size (§V.B.3).
    pub fn with_chunk(chunk: usize) -> Self {
        assert!(chunk > 0);
        DistWs {
            chunk_policy: ChunkPolicy::Fixed(chunk),
            ..Default::default()
        }
    }

    /// DistWS with Olivier & Prins' StealHalf chunking (§V.B.3).
    pub fn steal_half() -> Self {
        DistWs {
            chunk_policy: ChunkPolicy::Half,
            ..Default::default()
        }
    }

    /// DistWS with a specific victim ordering.
    pub fn with_victim_order(order: VictimOrder) -> Self {
        DistWs {
            victim_order: order,
            ..Default::default()
        }
    }

    /// DistWS without the idle/under-utilized mapping rule (ablation).
    pub fn without_utilization_rule() -> Self {
        DistWs {
            respect_utilization: false,
            ..Default::default()
        }
    }
}

impl Policy for DistWs {
    fn name(&self) -> &'static str {
        "DistWS"
    }

    fn map_task(
        &mut self,
        meta: &TaskMeta,
        view: &dyn ClusterView,
        _rng: &mut SplitMix64,
    ) -> DequeChoice {
        match meta.locality {
            // Line 3: sensitive tasks always to a private deque at p.
            Locality::Sensitive => DequeChoice::Private,
            // Lines 5–8: flexible tasks to a private deque when the
            // place is idle or under-utilized, else to the shared deque.
            Locality::Flexible => {
                if self.respect_utilization
                    && protocol::map_flexible_private(
                        view.is_place_active(meta.home),
                        view.is_under_utilized(meta.home),
                    )
                {
                    DequeChoice::Private
                } else {
                    DequeChoice::Shared
                }
            }
        }
    }

    fn steal_sequence(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep> {
        let mut out = Vec::new();
        self.steal_sequence_into(thief, view, rng, &mut out);
        out
    }

    fn steal_sequence_into(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        let place = view.config().place_of(thief);
        out.clear();
        out.extend_from_slice(&protocol::local_steps()); // lines 9–15
        let budget = self.backoff.budget(thief, view.config().places);
        push_remote_visits(
            out,
            place,
            view,
            self.victim_order,
            budget,
            rng,
            &mut self.cache,
        );
    }

    fn may_migrate(&self, locality: Locality) -> bool {
        locality.remotely_stealable()
    }

    fn remote_chunk(&self) -> usize {
        self.chunk_policy.amount(protocol::REMOTE_STEAL_CHUNK)
    }

    fn remote_chunk_for(&self, victim_len: usize) -> usize {
        self.chunk_policy.amount(victim_len)
    }

    fn note_result(&mut self, thief: GlobalWorkerId, found: bool) {
        self.backoff.note(thief, found);
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// DistWS-NS
// ---------------------------------------------------------------------------

/// The non-selective ablation (§VIII.3): identical deque structure and
/// steal protocol to DistWS, but tasks are mapped to private and shared
/// deques in round-robin fashion *ignoring* their locality annotation,
/// and any task — sensitive included — may be stolen remotely.
#[derive(Debug, Clone)]
pub struct DistWsNs {
    victim_order: VictimOrder,
    chunk: usize,
    rr: u64,
    backoff: FailBackoff,
    cache: VictimCache,
}

impl Default for DistWsNs {
    fn default() -> Self {
        DistWsNs {
            victim_order: VictimOrder::Random,
            chunk: protocol::REMOTE_STEAL_CHUNK,
            rr: 0,
            backoff: FailBackoff::default(),
            cache: VictimCache::default(),
        }
    }
}

impl Policy for DistWsNs {
    fn name(&self) -> &'static str {
        "DistWS-NS"
    }

    fn map_task(
        &mut self,
        _meta: &TaskMeta,
        _view: &dyn ClusterView,
        _rng: &mut SplitMix64,
    ) -> DequeChoice {
        // Round-robin between private and shared deques "so that there
        // are opportunities for both local and remote execution".
        self.rr = self.rr.wrapping_add(1);
        if self.rr.is_multiple_of(2) {
            DequeChoice::Private
        } else {
            DequeChoice::Shared
        }
    }

    fn steal_sequence(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep> {
        let mut out = Vec::new();
        self.steal_sequence_into(thief, view, rng, &mut out);
        out
    }

    fn steal_sequence_into(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        let place = view.config().place_of(thief);
        out.clear();
        out.extend_from_slice(&protocol::local_steps());
        let budget = self.backoff.budget(thief, view.config().places);
        push_remote_visits(
            out,
            place,
            view,
            self.victim_order,
            budget,
            rng,
            &mut self.cache,
        );
    }

    fn may_migrate(&self, _locality: Locality) -> bool {
        true
    }

    fn remote_chunk(&self) -> usize {
        self.chunk
    }

    fn note_result(&mut self, thief: GlobalWorkerId, found: bool) {
        self.backoff.note(thief, found);
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// RandomWS
// ---------------------------------------------------------------------------

/// Randomized distributed work stealing: the classical baseline the §X
/// UTS study compares against (lifeline load balancing with lifelines
/// disabled degenerates to this). Mapping follows DistWS's rule so the
/// same tasks are exposed for distributed stealing, but a thief probes
/// a *single random victim per round* instead of sweeping all places,
/// and steals chunk = 1.
#[derive(Debug, Clone, Default)]
pub struct RandomWs;

impl Policy for RandomWs {
    fn name(&self) -> &'static str {
        "RandomWS"
    }

    fn map_task(
        &mut self,
        meta: &TaskMeta,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> DequeChoice {
        DistWs::default().map_task(meta, view, rng)
    }

    fn steal_sequence(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep> {
        let mut out = Vec::new();
        self.steal_sequence_into(thief, view, rng, &mut out);
        out
    }

    fn steal_sequence_into(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        let cfg = view.config();
        let place = cfg.place_of(thief);
        out.clear();
        out.extend_from_slice(&protocol::local_steps());
        if cfg.places > 1 {
            // One random victim per round; a missed steal does not
            // inform future steals (the property lifelines fix).
            let mut v = PlaceId(rng.below(cfg.places as u64) as u32);
            if v == place {
                v = PlaceId((v.0 + 1) % cfg.places);
            }
            out.push(StealStep::StealRemoteShared(v));
        }
    }

    fn may_migrate(&self, locality: Locality) -> bool {
        locality.remotely_stealable()
    }

    fn remote_chunk(&self) -> usize {
        1
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::StaticView;
    use distws_core::ClusterConfig;

    fn meta(locality: Locality) -> TaskMeta {
        TaskMeta::basic(PlaceId(0), locality, PlaceId(0))
    }

    #[test]
    fn x10ws_never_uses_shared_or_remote() {
        let cfg = ClusterConfig::new(4, 2);
        let view = StaticView::saturated(cfg);
        let mut p = X10Ws;
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            p.map_task(&meta(Locality::Flexible), &view, &mut rng),
            DequeChoice::Private
        );
        let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
        assert!(seq.iter().all(|s| !matches!(
            s,
            StealStep::StealRemoteShared(_) | StealStep::StealLocalShared
        )));
        assert!(!p.may_migrate(Locality::Flexible));
    }

    #[test]
    fn distws_maps_sensitive_private_always() {
        let cfg = ClusterConfig::new(2, 2);
        let view = StaticView::saturated(cfg);
        let mut p = DistWs::default();
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            p.map_task(&meta(Locality::Sensitive), &view, &mut rng),
            DequeChoice::Private
        );
    }

    #[test]
    fn distws_flexible_mapping_depends_on_utilization() {
        let cfg = ClusterConfig::new(2, 2);
        let mut p = DistWs::default();
        let mut rng = SplitMix64::new(1);
        // Fully utilized place → shared deque.
        let view = StaticView::saturated(cfg.clone());
        assert_eq!(
            p.map_task(&meta(Locality::Flexible), &view, &mut rng),
            DequeChoice::Shared
        );
        // Under-utilized place → private deque (Algorithm 1 line 5–6).
        let mut view = StaticView::saturated(cfg.clone());
        view.busy[0] = 1;
        assert_eq!(
            p.map_task(&meta(Locality::Flexible), &view, &mut rng),
            DequeChoice::Private
        );
        // Idle place → private deque.
        let view = StaticView::idle(cfg);
        assert_eq!(
            p.map_task(&meta(Locality::Flexible), &view, &mut rng),
            DequeChoice::Private
        );
    }

    #[test]
    fn distws_steal_sequence_matches_algorithm_order() {
        let cfg = ClusterConfig::new(4, 2);
        let mut view = StaticView::saturated(cfg);
        // Every place advertises pooled work, so the full sweep runs.
        view.shared = vec![1; 4];
        let mut p = DistWs::default();
        let mut rng = SplitMix64::new(1);
        let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
        assert_eq!(
            &seq[..4],
            &[
                StealStep::PollPrivate,
                StealStep::ProbeNetwork,
                StealStep::StealCoWorker,
                StealStep::StealLocalShared
            ]
        );
        // Remote tail: visits every other place exactly once, each
        // followed by a network re-probe.
        let victims: Vec<PlaceId> = seq[4..]
            .iter()
            .filter_map(|s| match s {
                StealStep::StealRemoteShared(p) => Some(*p),
                _ => None,
            })
            .collect();
        let mut sorted: Vec<u32> = victims.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        assert_eq!(seq.len(), 4 + 2 * 3);
    }

    #[test]
    fn distws_guards_sensitive_migration() {
        let p = DistWs::default();
        assert!(p.may_migrate(Locality::Flexible));
        assert!(!p.may_migrate(Locality::Sensitive));
        assert_eq!(p.remote_chunk(), 2);
    }

    #[test]
    fn distws_ns_round_robins_and_migrates_anything() {
        let cfg = ClusterConfig::new(2, 2);
        let view = StaticView::saturated(cfg);
        let mut p = DistWsNs::default();
        let mut rng = SplitMix64::new(1);
        let choices: Vec<_> = (0..4)
            .map(|_| p.map_task(&meta(Locality::Sensitive), &view, &mut rng))
            .collect();
        assert_eq!(
            choices,
            vec![
                DequeChoice::Shared,
                DequeChoice::Private,
                DequeChoice::Shared,
                DequeChoice::Private
            ]
        );
        assert!(p.may_migrate(Locality::Sensitive));
    }

    #[test]
    fn random_ws_probes_single_victim() {
        let cfg = ClusterConfig::new(8, 2);
        let view = StaticView::saturated(cfg);
        let mut p = RandomWs;
        let mut rng = SplitMix64::new(1);
        let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
        let remotes = seq
            .iter()
            .filter(|s| matches!(s, StealStep::StealRemoteShared(_)))
            .count();
        assert_eq!(remotes, 1);
        // Never targets itself.
        for _ in 0..100 {
            let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
            for s in seq {
                if let StealStep::StealRemoteShared(v) = s {
                    assert_ne!(v, PlaceId(0));
                }
            }
        }
    }

    #[test]
    fn chunk_policies() {
        assert_eq!(ChunkPolicy::Fixed(2).amount(100), 2);
        assert_eq!(ChunkPolicy::Half.amount(100), 50);
        assert_eq!(
            ChunkPolicy::Half.amount(1),
            1,
            "StealHalf takes at least one"
        );
        let p = DistWs::steal_half();
        assert_eq!(p.remote_chunk_for(10), 5);
        assert_eq!(DistWs::with_chunk(4).remote_chunk_for(10), 4);
    }

    #[test]
    fn status_board_truncates_sweep_to_loaded_places() {
        let cfg = ClusterConfig::new(8, 2);
        let mut view = StaticView::saturated(cfg);
        // Only two places advertise work: probe them first, plus a
        // small staleness allowance — never the full 7-victim sweep.
        view.shared = vec![0; 8];
        view.shared[3] = 5;
        view.shared[6] = 1;
        let mut p = DistWs::default();
        let mut rng = SplitMix64::new(2);
        let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
        let victims: Vec<PlaceId> = seq
            .iter()
            .filter_map(|s| match s {
                StealStep::StealRemoteShared(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(
            victims.len(),
            4,
            "2 loaded + 2 staleness probes: {victims:?}"
        );
        assert_eq!(victims[0], PlaceId(3), "most loaded place probed first");
        assert_eq!(victims[1], PlaceId(6));
    }

    #[test]
    fn victim_order_ring_is_distance_sorted() {
        let mut rng = SplitMix64::new(1);
        let v = VictimOrder::NearestFirstRing.victims(PlaceId(0), 8, &mut rng);
        let d: Vec<u32> = v.iter().map(|p| p.0.min(8 - p.0)).collect();
        let mut s = d.clone();
        s.sort_unstable();
        assert_eq!(d, s);
    }

    #[test]
    fn backoff_shrinks_remote_sweep_after_dry_rounds() {
        let cfg = ClusterConfig::new(8, 2);
        let mut view = StaticView::saturated(cfg);
        // Every place advertises pooled work (the status-board
        // truncation is tested separately below).
        view.shared = vec![1; 8];
        let mut p = DistWs::default();
        let mut rng = SplitMix64::new(1);
        let thief = GlobalWorkerId(0);
        let remotes = |seq: &[StealStep]| {
            seq.iter()
                .filter(|s| matches!(s, StealStep::StealRemoteShared(_)))
                .count()
        };
        // Fresh thief: full sweep of the 7 other places.
        assert_eq!(remotes(&p.steal_sequence(thief, &view, &mut rng)), 7);
        p.note_result(thief, false);
        p.note_result(thief, false);
        // After two dry rounds: down to 2 victims per round.
        assert_eq!(remotes(&p.steal_sequence(thief, &view, &mut rng)), 2);
        // A success resets the budget.
        p.note_result(thief, true);
        assert_eq!(remotes(&p.steal_sequence(thief, &view, &mut rng)), 7);
        // Backoff is per thief.
        assert_eq!(
            remotes(&p.steal_sequence(GlobalWorkerId(5), &view, &mut rng)),
            7
        );
    }

    #[test]
    fn victim_order_random_is_complete_permutation() {
        let mut rng = SplitMix64::new(9);
        let v = VictimOrder::Random.victims(PlaceId(3), 16, &mut rng);
        assert_eq!(v.len(), 15);
        let mut ids: Vec<u32> = v.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..16u32).filter(|i| *i != 3).collect::<Vec<_>>());
    }
}
