//! The policy ⇄ engine interface: what policies can observe
//! ([`ClusterView`]) and what they decide ([`DequeChoice`],
//! [`StealStep`]).

use distws_core::{ClusterConfig, GlobalWorkerId, Locality, PlaceId};

/// Metadata of a task at mapping time (the policy never sees the
/// closure).
#[derive(Debug, Clone, Copy)]
pub struct TaskMeta {
    /// Home place from the `async (p)` statement.
    pub home: PlaceId,
    /// Locality annotation.
    pub locality: Locality,
    /// Place where the spawn was executed (≠ home for cross-place
    /// `async at`).
    pub spawned_at: PlaceId,
    /// Estimated compute granularity in ns (what a runtime can learn
    /// from profiling; used by [`crate::AdaptiveWs`]).
    pub est_cost_ns: u64,
    /// Bytes the task would carry on migration.
    pub footprint_bytes: u64,
}

impl TaskMeta {
    /// Metadata carrying only placement facts (granularity/footprint
    /// zeroed) — convenient in tests of annotation-driven policies.
    pub fn basic(home: PlaceId, locality: Locality, spawned_at: PlaceId) -> Self {
        TaskMeta {
            home,
            locality,
            spawned_at,
            est_cost_ns: 0,
            footprint_bytes: 0,
        }
    }
}

/// Where a newly arrived task is enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeChoice {
    /// A private worker deque at the home place. The engine picks the
    /// worker: the spawning worker itself for a local spawn (help-first),
    /// otherwise an idle worker if one exists (Algorithm 1's
    /// "mapping a task directly to an idle worker"), else round-robin.
    Private,
    /// The home place's shared FIFO deque — the pool visible to
    /// distributed stealing.
    Shared,
}

/// One step of the steal protocol, executed in order by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealStep {
    /// Pop the thief's own private deque (Algorithm 1 line 9).
    PollPrivate,
    /// Probe the network for tasks launched at this place by remote
    /// spawners (line 11 / line 19 re-probe). Charged but non-blocking.
    ProbeNetwork,
    /// Steal (chunk 1) from a co-located worker's private deque
    /// (line 13).
    StealCoWorker,
    /// Take from the thief place's own shared deque (line 15).
    StealLocalShared,
    /// Distributed steal from the shared deque of a specific remote
    /// place (lines 22–27), taking [`crate::Policy::remote_chunk`]
    /// tasks.
    StealRemoteShared(PlaceId),
    /// Lifeline protocol: go quiescent; the engine will wake this
    /// worker when a lifeline partner pushes work.
    Quiesce,
}

impl StealStep {
    /// The Algorithm 1 steal tier this step probes, as the stable wire
    /// name used by the trace layer (`distws_trace::StealTier`), or
    /// `None` for steps that are not steals (own-deque polls, network
    /// probes, quiescing).
    pub fn tier_name(self) -> Option<&'static str> {
        match self {
            StealStep::StealCoWorker => Some("local_private"),
            StealStep::StealLocalShared => Some("local_shared"),
            StealStep::StealRemoteShared(_) => Some("remote"),
            StealStep::PollPrivate | StealStep::ProbeNetwork | StealStep::Quiesce => None,
        }
    }

    /// The steal tier as a dense index (0 = local private, 1 = local
    /// shared, 2 = remote) — how the metrics layer addresses its
    /// per-tier attempt/success counters. `None` for non-steal steps.
    pub fn tier_index(self) -> Option<usize> {
        match self {
            StealStep::StealCoWorker => Some(0),
            StealStep::StealLocalShared => Some(1),
            StealStep::StealRemoteShared(_) => Some(2),
            StealStep::PollPrivate | StealStep::ProbeNetwork | StealStep::Quiesce => None,
        }
    }
}

/// Engine state a policy may observe when making decisions.
///
/// The view is deliberately narrow: the paper's runtime keeps one
/// status object per place (§VI.B) readable without synchronization,
/// and the policies consult nothing else.
pub trait ClusterView {
    /// Cluster shape.
    fn config(&self) -> &ClusterConfig;

    /// Number of workers at `p` currently executing a task body.
    fn busy_workers(&self, p: PlaceId) -> u32;

    /// Length of the shared deque at `p` (lock-free snapshot).
    fn shared_len(&self, p: PlaceId) -> usize;

    /// Length of worker `w`'s private deque.
    fn private_len(&self, w: GlobalWorkerId) -> usize;

    /// §VI.B: a place is *active* if any of its workers is running an
    /// activity (not suspended / stopped / searching).
    fn is_place_active(&self, p: PlaceId) -> bool {
        self.busy_workers(p) > 0
    }

    /// Algorithm 1 line 5: a place is under-utilized if it could host
    /// more parallelism — spare thread slots exist, or fewer workers
    /// than the thread cap are busy.
    fn is_under_utilized(&self, p: PlaceId) -> bool {
        let cfg = self.config();
        cfg.spare_threads > 0 || self.busy_workers(p) < cfg.max_threads_per_place
    }
}

/// A trivially constructible view for unit tests and doc examples.
#[derive(Debug, Clone)]
pub struct StaticView {
    /// Cluster shape.
    pub config: ClusterConfig,
    /// Busy workers per place.
    pub busy: Vec<u32>,
    /// Shared-deque length per place.
    pub shared: Vec<usize>,
    /// Private-deque length per worker.
    pub private: Vec<usize>,
}

impl StaticView {
    /// A view of an entirely idle cluster.
    pub fn idle(config: ClusterConfig) -> Self {
        let places = config.places as usize;
        let workers = config.total_workers() as usize;
        StaticView {
            config,
            busy: vec![0; places],
            shared: vec![0; places],
            private: vec![0; workers],
        }
    }

    /// A view of a fully busy cluster.
    pub fn saturated(config: ClusterConfig) -> Self {
        let mut v = Self::idle(config);
        let wpp = v.config.workers_per_place;
        v.busy = vec![wpp; v.config.places as usize];
        v
    }
}

impl ClusterView for StaticView {
    fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn busy_workers(&self, p: PlaceId) -> u32 {
        self.busy[p.index()]
    }

    fn shared_len(&self, p: PlaceId) -> usize {
        self.shared[p.index()]
    }

    fn private_len(&self, w: GlobalWorkerId) -> usize {
        self.private[w.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_status_flags() {
        let cfg = ClusterConfig::new(2, 4);
        let mut v = StaticView::idle(cfg);
        assert!(!v.is_place_active(PlaceId(0)));
        assert!(v.is_under_utilized(PlaceId(0)));
        v.busy[0] = 4;
        assert!(v.is_place_active(PlaceId(0)));
        assert!(!v.is_under_utilized(PlaceId(0)));
        v.busy[0] = 3;
        assert!(v.is_under_utilized(PlaceId(0)));
    }

    #[test]
    fn spare_threads_mark_under_utilized() {
        let mut cfg = ClusterConfig::new(1, 2);
        cfg.spare_threads = 1;
        let mut v = StaticView::idle(cfg);
        v.busy[0] = 2;
        assert!(
            v.is_under_utilized(PlaceId(0)),
            "spares>0 must imply under-utilized"
        );
    }
}
