//! Algorithm 1's protocol constants, shared by the policies, the
//! engines and the model checker (`distws-analyze`).
//!
//! The paper fixes several magic numbers and orderings in §V's
//! Algorithm 1. They used to live inline in `policies.rs`; extracting
//! them here makes them a single source of truth that the explicit-
//! state protocol model (`distws_analyze::protocol`) and the trace
//! conformance checker (`distws_analyze::conform`) consume directly,
//! so the model can never silently drift from the implementation.
//!
//! Line map (Algorithm 1, §V):
//!
//! | Lines | Rule | Here |
//! |---|---|---|
//! | 3 | sensitive tasks → private deque | [`map_flexible_private`] callers (sensitive is unconditional) |
//! | 5–8 | flexible → private iff place idle or under-utilized, else shared | [`map_flexible_private`] |
//! | 9 | poll own private deque | [`local_steps`]`[0]` |
//! | 11 | probe the network | [`local_steps`]`[1]` |
//! | 13 | steal 1 task from a co-located worker | [`local_steps`]`[2]`, [`LOCAL_STEAL_CHUNK`] |
//! | 15 | take from the local shared deque | [`local_steps`]`[3]` |
//! | 18–29 | distributed steal sweep, chunk 2 | [`remote_visit`], [`REMOTE_STEAL_CHUNK`] |
//! | 19 | re-probe the network after every failed remote steal | [`remote_visit`]`[1]` |

use crate::view::StealStep;
use distws_core::PlaceId;

/// Algorithm 1 line 13: a steal from a co-located worker's private
/// deque takes exactly one task (classic Chase–Lev steal granularity).
pub const LOCAL_STEAL_CHUNK: usize = 1;

/// §V.B.3 / Algorithm 1 line 24: a distributed steal takes two tasks —
/// one to execute immediately, one to amortize the migration round trip.
pub const REMOTE_STEAL_CHUNK: usize = 2;

/// The steal tiers of Algorithm 1 in protocol order, as the stable wire
/// names used by the trace layer (`distws_trace::StealTier`). A worker's
/// steal round must attempt tiers in non-decreasing index order; a
/// success at tier *i* is justified only by failed attempts at every
/// tier before it in the same round.
pub const STEAL_TIER_ORDER: [&str; 3] = ["local_private", "local_shared", "remote"];

/// Rank of a steal tier (by wire name) in [`STEAL_TIER_ORDER`], or
/// `None` for strings that are not steal tiers.
pub fn tier_rank(name: &str) -> Option<usize> {
    STEAL_TIER_ORDER.iter().position(|t| *t == name)
}

/// Algorithm 1 lines 9–15: the intra-place prefix every full-protocol
/// policy runs before considering distributed steals, in order — poll
/// own private deque (9), probe the network (11), steal from a
/// co-located worker (13), take from the local shared deque (15).
pub fn local_steps() -> [StealStep; 4] {
    [
        StealStep::PollPrivate,      // line 9
        StealStep::ProbeNetwork,     // line 11
        StealStep::StealCoWorker,    // line 13
        StealStep::StealLocalShared, // line 15
    ]
}

/// Algorithm 1 lines 22–27 + line 19: one remote visit of the
/// distributed sweep — a chunked steal from `victim`'s shared deque
/// followed by the mandated network re-probe before the next victim.
pub fn remote_visit(victim: PlaceId) -> [StealStep; 2] {
    [
        StealStep::StealRemoteShared(victim),
        // Line 19: after a failed distributed steal, first probe the
        // network before exploring other places.
        StealStep::ProbeNetwork,
    ]
}

/// Algorithm 1 lines 5–8, the mapping predicate for locality-flexible
/// tasks: map to a *private* deque when the home place is idle
/// (`!place_active`) or under-utilized, else pool on the *shared* deque
/// where distributed thieves can see it. Sensitive tasks (line 3) never
/// consult this — they are unconditionally private.
pub fn map_flexible_private(place_active: bool, under_utilized: bool) -> bool {
    !place_active || under_utilized
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_matches_steal_step_tier_names() {
        // The protocol order must agree with the order the steps appear
        // in the canonical local prefix + remote tail.
        let [_, _, co, shared] = local_steps();
        assert_eq!(co.tier_name(), Some(STEAL_TIER_ORDER[0]));
        assert_eq!(shared.tier_name(), Some(STEAL_TIER_ORDER[1]));
        let [remote, reprobe] = remote_visit(PlaceId(1));
        assert_eq!(remote.tier_name(), Some(STEAL_TIER_ORDER[2]));
        assert_eq!(reprobe, StealStep::ProbeNetwork, "line 19 re-probe");
    }

    #[test]
    fn tier_rank_is_total_over_tier_names() {
        assert_eq!(tier_rank("local_private"), Some(0));
        assert_eq!(tier_rank("local_shared"), Some(1));
        assert_eq!(tier_rank("remote"), Some(2));
        assert_eq!(tier_rank("network"), None);
    }

    #[test]
    fn mapping_predicate_truth_table() {
        // (active, under-utilized) → private?
        assert!(map_flexible_private(false, false), "idle place");
        assert!(map_flexible_private(false, true));
        assert!(map_flexible_private(true, true), "under-utilized place");
        assert!(!map_flexible_private(true, false), "saturated place pools");
    }

    #[test]
    fn chunk_constants_match_the_paper() {
        assert_eq!(LOCAL_STEAL_CHUNK, 1, "line 13");
        assert_eq!(REMOTE_STEAL_CHUNK, 2, "§V.B.3");
    }
}
