//! Algorithm 1's protocol constants, shared by the policies, the
//! engines and the model checker (`distws-analyze`).
//!
//! The paper fixes several magic numbers and orderings in §V's
//! Algorithm 1. They used to live inline in `policies.rs`; extracting
//! them here makes them a single source of truth that the explicit-
//! state protocol model (`distws_analyze::protocol`) and the trace
//! conformance checker (`distws_analyze::conform`) consume directly,
//! so the model can never silently drift from the implementation.
//!
//! Line map (Algorithm 1, §V):
//!
//! | Lines | Rule | Here |
//! |---|---|---|
//! | 3 | sensitive tasks → private deque | [`map_flexible_private`] callers (sensitive is unconditional) |
//! | 5–8 | flexible → private iff place idle or under-utilized, else shared | [`map_flexible_private`] |
//! | 9 | poll own private deque | [`local_steps`]`[0]` |
//! | 11 | probe the network | [`local_steps`]`[1]` |
//! | 13 | steal 1 task from a co-located worker | [`local_steps`]`[2]`, [`LOCAL_STEAL_CHUNK`] |
//! | 15 | take from the local shared deque | [`local_steps`]`[3]` |
//! | 18–29 | distributed steal sweep, chunk 2 | [`remote_visit`], [`REMOTE_STEAL_CHUNK`] |
//! | 19 | re-probe the network after every failed remote steal | [`remote_visit`]`[1]` |

use crate::view::StealStep;
use distws_core::PlaceId;

/// Algorithm 1 line 13: a steal from a co-located worker's private
/// deque takes exactly one task (classic Chase–Lev steal granularity).
pub const LOCAL_STEAL_CHUNK: usize = 1;

/// §V.B.3 / Algorithm 1 line 24: a distributed steal takes two tasks —
/// one to execute immediately, one to amortize the migration round trip.
pub const REMOTE_STEAL_CHUNK: usize = 2;

/// Retries against the *same* victim after a steal-probe timeout
/// before the thief moves to the next victim in the sweep
/// ([`crate::retry::RetryPolicy::budget`]'s default). Finite by
/// construction: the liveness layer's `steal-progress` property
/// (`distws_analyze::liveness`) checks that no fair execution retries
/// forever without acquiring work, which is exactly the bug an
/// unbounded budget would introduce.
pub const STEAL_RETRY_BUDGET: u32 = 2;

/// Base of the lifeline hypercube graph (§ Saraswat et al.): place
/// `i`'s lifelines go to `(i + base^k) mod P`. Shared with
/// [`crate::lifeline::LifelineWs`]'s default so the model checker's
/// `lifeline-wakeup` property and the runtime agree on the wakeup
/// topology.
pub const LIFELINE_BASE: u32 = 2;

/// Random-victim attempts a lifeline thief makes before falling back
/// to its lifeline edges and going dormant
/// ([`crate::lifeline::LifelineWs`]'s default). Bounded so a failed
/// sweep terminates in the dormant state the `lifeline-wakeup`
/// property guards.
pub const LIFELINE_RANDOM_ATTEMPTS: u32 = 2;

/// The steal tiers of Algorithm 1 in protocol order, as the stable wire
/// names used by the trace layer (`distws_trace::StealTier`). A worker's
/// steal round must attempt tiers in non-decreasing index order; a
/// success at tier *i* is justified only by failed attempts at every
/// tier before it in the same round.
pub const STEAL_TIER_ORDER: [&str; 3] = ["local_private", "local_shared", "remote"];

/// Rank of a steal tier (by wire name) in [`STEAL_TIER_ORDER`], or
/// `None` for strings that are not steal tiers.
pub fn tier_rank(name: &str) -> Option<usize> {
    STEAL_TIER_ORDER.iter().position(|t| *t == name)
}

/// Algorithm 1 lines 9–15: the intra-place prefix every full-protocol
/// policy runs before considering distributed steals, in order — poll
/// own private deque (9), probe the network (11), steal from a
/// co-located worker (13), take from the local shared deque (15).
pub fn local_steps() -> [StealStep; 4] {
    [
        StealStep::PollPrivate,      // line 9
        StealStep::ProbeNetwork,     // line 11
        StealStep::StealCoWorker,    // line 13
        StealStep::StealLocalShared, // line 15
    ]
}

/// Algorithm 1 lines 22–27 + line 19: one remote visit of the
/// distributed sweep — a chunked steal from `victim`'s shared deque
/// followed by the mandated network re-probe before the next victim.
pub fn remote_visit(victim: PlaceId) -> [StealStep; 2] {
    [
        StealStep::StealRemoteShared(victim),
        // Line 19: after a failed distributed steal, first probe the
        // network before exploring other places.
        StealStep::ProbeNetwork,
    ]
}

/// Algorithm 1 lines 5–8, the mapping predicate for locality-flexible
/// tasks: map to a *private* deque when the home place is idle
/// (`!place_active`) or under-utilized, else pool on the *shared* deque
/// where distributed thieves can see it. Sensitive tasks (line 3) never
/// consult this — they are unconditionally private.
pub fn map_flexible_private(place_active: bool, under_utilized: bool) -> bool {
    !place_active || under_utilized
}

/// The cluster wire vocabulary (PR 7's `distws-cluster` frames), as a
/// shared enum so the transport (`distws_cluster::wire`), the protocol
/// model (`distws_analyze::protocol`) and the TLA+ export
/// (`distws_analyze::tla`) agree on one message-kind space. The
/// discriminants are the wire tags; `distws-cluster` asserts the
/// correspondence in its frame tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageKind {
    /// Place join handshake.
    Hello = 1,
    /// Distributed steal probe (Algorithm 1 line 22).
    StealProbe = 2,
    /// Steal probe answer carrying 0..=chunk tasks.
    StealReply = 3,
    /// Task payload migrating to the thief.
    TaskMigrate = 4,
    /// Finish-latch decrement routed to the latch home.
    FinishDec = 5,
    /// Custody transfer notice to the coordinator.
    TaskMoved = 6,
    /// Liveness beacon.
    Heartbeat = 7,
    /// Orderly teardown.
    Shutdown = 8,
    /// Spawn notice for latch accounting.
    SpawnNote = 9,
    /// Custody poll question: "do you hold task t?" (PR 7 recovery).
    TaskQuery = 10,
    /// Custody poll answer.
    TaskAnswer = 11,
}

impl MessageKind {
    /// Every kind, in wire-tag order.
    pub const ALL: [MessageKind; 11] = [
        MessageKind::Hello,
        MessageKind::StealProbe,
        MessageKind::StealReply,
        MessageKind::TaskMigrate,
        MessageKind::FinishDec,
        MessageKind::TaskMoved,
        MessageKind::Heartbeat,
        MessageKind::Shutdown,
        MessageKind::SpawnNote,
        MessageKind::TaskQuery,
        MessageKind::TaskAnswer,
    ];

    /// The wire tag byte (the enum discriminant).
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// The kind for a wire tag byte, if any.
    pub fn from_tag(tag: u8) -> Option<MessageKind> {
        MessageKind::ALL.iter().copied().find(|k| k.tag() == tag)
    }

    /// Stable lowercase name (used in traces, stats and the TLA+
    /// export).
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::Hello => "hello",
            MessageKind::StealProbe => "steal_probe",
            MessageKind::StealReply => "steal_reply",
            MessageKind::TaskMigrate => "task_migrate",
            MessageKind::FinishDec => "finish_dec",
            MessageKind::TaskMoved => "task_moved",
            MessageKind::Heartbeat => "heartbeat",
            MessageKind::Shutdown => "shutdown",
            MessageKind::SpawnNote => "spawn_note",
            MessageKind::TaskQuery => "task_query",
            MessageKind::TaskAnswer => "task_answer",
        }
    }
}

/// Incarnation-epoch fencing predicate (PR 7 recovery): a custody
/// lease taken under epoch `lease_epoch` is *stale* relative to an
/// incarnation that died at `dying_epoch` iff it was taken under that
/// incarnation or an earlier one. The strict successor epoch (the
/// restarted place) is live. Both `distws_cluster::place` (coordinator
/// sweep + custody poll) and the protocol model's cluster-era
/// transitions call this one predicate, so the fence can't drift
/// between implementation and model.
pub fn lease_is_stale(lease_epoch: u32, dying_epoch: u32) -> bool {
    lease_epoch <= dying_epoch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_matches_steal_step_tier_names() {
        // The protocol order must agree with the order the steps appear
        // in the canonical local prefix + remote tail.
        let [_, _, co, shared] = local_steps();
        assert_eq!(co.tier_name(), Some(STEAL_TIER_ORDER[0]));
        assert_eq!(shared.tier_name(), Some(STEAL_TIER_ORDER[1]));
        let [remote, reprobe] = remote_visit(PlaceId(1));
        assert_eq!(remote.tier_name(), Some(STEAL_TIER_ORDER[2]));
        assert_eq!(reprobe, StealStep::ProbeNetwork, "line 19 re-probe");
    }

    #[test]
    fn tier_rank_is_total_over_tier_names() {
        assert_eq!(tier_rank("local_private"), Some(0));
        assert_eq!(tier_rank("local_shared"), Some(1));
        assert_eq!(tier_rank("remote"), Some(2));
        assert_eq!(tier_rank("network"), None);
    }

    #[test]
    fn mapping_predicate_truth_table() {
        // (active, under-utilized) → private?
        assert!(map_flexible_private(false, false), "idle place");
        assert!(map_flexible_private(false, true));
        assert!(map_flexible_private(true, true), "under-utilized place");
        assert!(!map_flexible_private(true, false), "saturated place pools");
    }

    #[test]
    fn chunk_constants_match_the_paper() {
        assert_eq!(LOCAL_STEAL_CHUNK, 1, "line 13");
        assert_eq!(REMOTE_STEAL_CHUNK, 2, "§V.B.3");
    }

    #[test]
    fn message_kind_tags_are_dense_and_round_trip() {
        for (i, k) in MessageKind::ALL.iter().enumerate() {
            assert_eq!(k.tag() as usize, i + 1, "dense from 1");
            assert_eq!(MessageKind::from_tag(k.tag()), Some(*k));
        }
        assert_eq!(MessageKind::from_tag(0), None);
        assert_eq!(MessageKind::from_tag(12), None);
    }

    #[test]
    fn epoch_fencing_is_a_strict_successor_rule() {
        // Leases under the dying epoch or earlier are stale; only the
        // restarted incarnation's strictly larger epoch is live.
        assert!(lease_is_stale(0, 0));
        assert!(lease_is_stale(3, 3));
        assert!(lease_is_stale(2, 5));
        assert!(!lease_is_stale(1, 0));
        assert!(!lease_is_stale(6, 5));
    }
}
