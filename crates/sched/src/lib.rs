//! # distws-sched
//!
//! The scheduling policies of the paper, expressed engine-agnostically.
//!
//! A [`Policy`] answers the two questions of Algorithm 1:
//!
//! 1. **Task mapping** (lines 1–8): when a task is spawned at / arrives
//!    at its home place, does it go to a worker's *private deque* or to
//!    the place's *shared deque*?
//! 2. **Stealing** (lines 9–29): when a worker runs out of work, in
//!    what order does it look for more — its own private deque, the
//!    network, co-located workers, the local shared deque, remote
//!    shared deques?
//!
//! Both the deterministic discrete-event simulator (`distws-sim`) and
//! the real threaded runtime (`distws-runtime`) drive these policies,
//! so every experiment compares *identical decision logic* under
//! different substrates.
//!
//! Implemented policies:
//!
//! | Policy | Paper role |
//! |---|---|
//! | [`X10Ws`] | X10's shipped scheduler: help-first intra-place stealing, no cross-place steals |
//! | [`DistWs`] | the contribution: flexible tasks on shared deques, selective distributed stealing, chunk = 2 |
//! | [`DistWsNs`] | non-selective ablation: round-robin private/shared mapping, any task stealable remotely |
//! | [`RandomWs`] | randomized distributed stealing (§X UTS comparison) |
//! | [`LifelineWs`] | lifeline-graph global load balancing (Saraswat et al., §X) |
//! | [`AdaptiveWs`] | extension: annotation-free, profile-style classification (§II "computed on the fly") |

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod lifeline;
pub mod policies;
pub mod protocol;
pub mod retry;
pub mod view;

pub use adaptive::AdaptiveWs;
pub use lifeline::LifelineWs;
pub use policies::{ChunkPolicy, DistWs, DistWsNs, RandomWs, VictimOrder, X10Ws};
pub use protocol::{LOCAL_STEAL_CHUNK, REMOTE_STEAL_CHUNK, STEAL_TIER_ORDER};
pub use retry::RetryPolicy;
pub use view::{ClusterView, DequeChoice, StealStep, TaskMeta};

use distws_core::rng::SplitMix64;
use distws_core::Locality;

/// A scheduling policy: the mapping rule plus the steal protocol.
///
/// Methods take `&mut self` so policies may keep cheap local state
/// (round-robin counters, per-thief victim cursors). Engines that run
/// workers on multiple OS threads clone one policy instance per worker
/// via [`Policy::clone_box`].
pub trait Policy: Send {
    /// Short display name (`"X10WS"`, `"DistWS"`, ...).
    fn name(&self) -> &'static str;

    /// Algorithm 1 lines 1–8: choose the deque for a task arriving at
    /// its home place.
    fn map_task(
        &mut self,
        meta: &TaskMeta,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> DequeChoice;

    /// Algorithm 1 lines 9–29: the ordered steal attempts an idle
    /// worker performs. The engine executes steps until one yields a
    /// task; a fully failed sequence counts one failed steal round.
    fn steal_sequence(
        &mut self,
        thief: distws_core::GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep>;

    /// [`Self::steal_sequence`] into a caller-owned buffer (cleared
    /// first). The engine's steal loop reuses one buffer across every
    /// round, so hot policies override this allocation-free and route
    /// `steal_sequence` through it; the default simply delegates.
    fn steal_sequence_into(
        &mut self,
        thief: distws_core::GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        out.clear();
        out.extend(self.steal_sequence(thief, view, rng));
    }

    /// Whether a task of the given locality may ever migrate across
    /// places under this policy. Engines assert this on every
    /// migration, so the paper's guarantee — sensitive tasks never
    /// leave their place under DistWS — is machine-checked.
    fn may_migrate(&self, locality: Locality) -> bool;

    /// Number of tasks a remote steal takes at once (§V.B.3:
    /// [`protocol::REMOTE_STEAL_CHUNK`]).
    fn remote_chunk(&self) -> usize {
        protocol::REMOTE_STEAL_CHUNK
    }

    /// Chunk size given the victim's observed shared-deque length —
    /// lets policies implement Olivier & Prins' *StealHalf* (§V.B.3's
    /// comparison point: thieves take half the victim's deque).
    /// Default: the fixed [`Policy::remote_chunk`].
    fn remote_chunk_for(&self, _victim_len: usize) -> usize {
        self.remote_chunk()
    }

    /// Whether the policy maintains the dual-deque structure and place
    /// status (and therefore pays the per-spawn mapping overhead the
    /// paper observes as single-node slowdown).
    fn has_mapping_overhead(&self) -> bool {
        true
    }

    /// Lifeline partners of a place (outgoing lifeline edges); empty
    /// for non-lifeline policies.
    fn lifeline_partners(
        &self,
        _place: distws_core::PlaceId,
        _places: u32,
    ) -> Vec<distws_core::PlaceId> {
        Vec::new()
    }

    /// Whether the engine should run lifeline wake/push machinery.
    fn uses_lifelines(&self) -> bool {
        false
    }

    /// Feedback hook: the engine reports whether the thief's last
    /// steal round found work. Policies use it for failure backoff
    /// (after repeated dry rounds, probe fewer remote victims per
    /// round instead of hammering the whole cluster — standard
    /// practice since Dinan et al., SC'09). Default: ignore.
    fn note_result(&mut self, _thief: distws_core::GlobalWorkerId, _found: bool) {}

    /// Clone into a boxed trait object (one policy instance per worker
    /// thread in the threaded runtime).
    fn clone_box(&self) -> Box<dyn Policy>;
}

impl Clone for Box<dyn Policy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
