//! Lifeline-graph global load balancing (Saraswat et al., PPoPP 2011),
//! the comparator of the paper's §X UTS study.
//!
//! Protocol: a thief first performs `w` *random* distributed steal
//! attempts. If all fail, instead of spinning it **quiesces** after
//! registering with the places on its outgoing *lifeline edges*; a
//! registered place that later has surplus work *pushes* tasks to its
//! quiesced dependents. The lifeline graph is a cyclic hypercube: with
//! base `b`, place `i` has outgoing edges to `(i + b^k) mod P`.
//!
//! The paper reports that this two-step balancer beats DistWS on UTS
//! (a workload where *every* task is flexible and work is extremely
//! bursty), while DistWS beats plain random stealing by ~9% — our
//! reproduction regenerates exactly that comparison.

use crate::protocol::{self, LIFELINE_BASE, LIFELINE_RANDOM_ATTEMPTS};
use crate::view::{ClusterView, DequeChoice, StealStep, TaskMeta};
use crate::Policy;
use distws_core::rng::SplitMix64;
use distws_core::{GlobalWorkerId, Locality, PlaceId};

/// Lifeline-based load balancing policy.
#[derive(Debug, Clone)]
pub struct LifelineWs {
    /// Random steal attempts before quiescing (Saraswat et al. use
    /// small w; default 2).
    pub random_attempts: u32,
    /// Base of the cyclic hypercube lifeline graph (default 2).
    pub base: u32,
}

impl Default for LifelineWs {
    fn default() -> Self {
        LifelineWs {
            random_attempts: LIFELINE_RANDOM_ATTEMPTS,
            base: LIFELINE_BASE,
        }
    }
}

impl LifelineWs {
    /// Outgoing lifeline edges of `place` in a `places`-node cluster:
    /// `(place + base^k) mod places` for each power below `places`,
    /// deduplicated, excluding self-loops.
    pub fn edges(place: PlaceId, places: u32, base: u32) -> Vec<PlaceId> {
        let mut out = Vec::new();
        let mut step = 1u64;
        while step < places as u64 {
            let t = PlaceId(((place.0 as u64 + step) % places as u64) as u32);
            if t != place && !out.contains(&t) {
                out.push(t);
            }
            step *= base.max(2) as u64;
        }
        out
    }
}

impl Policy for LifelineWs {
    fn name(&self) -> &'static str {
        "LifelineWS"
    }

    fn map_task(
        &mut self,
        meta: &TaskMeta,
        view: &dyn ClusterView,
        _rng: &mut SplitMix64,
    ) -> DequeChoice {
        // Flexible tasks are pooled per place so both random steals and
        // lifeline pushes can take them; sensitive tasks stay private.
        match meta.locality {
            Locality::Sensitive => DequeChoice::Private,
            Locality::Flexible => {
                if protocol::map_flexible_private(
                    view.is_place_active(meta.home),
                    view.is_under_utilized(meta.home),
                ) {
                    DequeChoice::Private
                } else {
                    DequeChoice::Shared
                }
            }
        }
    }

    fn steal_sequence(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
    ) -> Vec<StealStep> {
        let mut out = Vec::new();
        self.steal_sequence_into(thief, view, rng, &mut out);
        out
    }

    fn steal_sequence_into(
        &mut self,
        thief: GlobalWorkerId,
        view: &dyn ClusterView,
        rng: &mut SplitMix64,
        out: &mut Vec<StealStep>,
    ) {
        let cfg = view.config();
        let place = cfg.place_of(thief);
        out.clear();
        out.extend_from_slice(&protocol::local_steps());
        if cfg.places > 1 {
            for _ in 0..self.random_attempts {
                let mut v = PlaceId(rng.below(cfg.places as u64) as u32);
                if v == place {
                    v = PlaceId((v.0 + 1) % cfg.places);
                }
                out.push(StealStep::StealRemoteShared(v));
            }
            // All random attempts failed: quiesce on the lifelines.
            out.push(StealStep::Quiesce);
        }
    }

    fn may_migrate(&self, locality: Locality) -> bool {
        locality.remotely_stealable()
    }

    fn remote_chunk(&self) -> usize {
        1
    }

    fn lifeline_partners(&self, place: PlaceId, places: u32) -> Vec<PlaceId> {
        Self::edges(place, places, self.base)
    }

    fn uses_lifelines(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::StaticView;
    use distws_core::ClusterConfig;

    #[test]
    fn hypercube_edges_base_two() {
        // 8 places: edges from 0 go to +1, +2, +4.
        let e = LifelineWs::edges(PlaceId(0), 8, 2);
        assert_eq!(e, vec![PlaceId(1), PlaceId(2), PlaceId(4)]);
        // wrap-around
        let e = LifelineWs::edges(PlaceId(7), 8, 2);
        assert_eq!(e, vec![PlaceId(0), PlaceId(1), PlaceId(3)]);
    }

    #[test]
    fn edges_have_no_self_loops_or_dups() {
        for places in [2u32, 3, 4, 16] {
            for p in 0..places {
                let e = LifelineWs::edges(PlaceId(p), places, 2);
                assert!(!e.contains(&PlaceId(p)));
                let mut d = e.clone();
                d.dedup();
                assert_eq!(d.len(), e.len());
            }
        }
    }

    #[test]
    fn sequence_ends_in_quiesce() {
        let cfg = ClusterConfig::new(8, 2);
        let view = StaticView::saturated(cfg);
        let mut p = LifelineWs::default();
        let mut rng = SplitMix64::new(1);
        let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
        assert_eq!(*seq.last().unwrap(), StealStep::Quiesce);
        let remotes = seq
            .iter()
            .filter(|s| matches!(s, StealStep::StealRemoteShared(_)))
            .count();
        assert_eq!(remotes, 2);
    }

    #[test]
    fn single_place_never_quiesces() {
        let cfg = ClusterConfig::new(1, 4);
        let view = StaticView::saturated(cfg);
        let mut p = LifelineWs::default();
        let mut rng = SplitMix64::new(1);
        let seq = p.steal_sequence(GlobalWorkerId(0), &view, &mut rng);
        assert!(!seq.contains(&StealStep::Quiesce));
    }
}
