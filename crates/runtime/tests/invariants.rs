//! Threaded-runtime invariants under concurrency: policy guarantees
//! must hold on real threads exactly as in the simulator.

use distws_core::{ClusterConfig, Locality, PlaceId, TaskScope, TaskSpec};
use distws_runtime::Runtime;
use distws_sched::{DistWs, DistWsNs, X10Ws};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn x10ws_never_steals_remotely_on_threads() {
    let counter = Arc::new(AtomicU64::new(0));
    let roots: Vec<TaskSpec> = (0..64)
        .map(|i| {
            let c = Arc::clone(&counter);
            TaskSpec::new(PlaceId(i % 2), Locality::Flexible, 0, "t", move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(X10Ws));
    let report = rt.run_roots("x10", roots);
    assert_eq!(report.steals.remote, 0, "X10WS crossed places on threads");
    assert_eq!(counter.load(Ordering::Relaxed), 64);
}

#[test]
fn sensitive_tasks_execute_at_their_place_on_threads() {
    // Under every selective policy, sensitive tasks must observe
    // here() == home() even with concurrent thieves hammering the
    // deques.
    for policy in [
        Box::new(DistWs::default()) as Box<dyn distws_sched::Policy>,
        Box::new(X10Ws),
    ] {
        let violations = Arc::new(AtomicU64::new(0));
        let roots: Vec<TaskSpec> = (0..80)
            .map(|i| {
                let v = Arc::clone(&violations);
                let home = PlaceId(i % 3);
                TaskSpec::new(
                    home,
                    Locality::Sensitive,
                    0,
                    "pin",
                    move |s: &mut dyn TaskScope| {
                        if s.here() != home {
                            v.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                )
            })
            .collect();
        let mut rt = Runtime::new(ClusterConfig::new(3, 2), policy);
        rt.run_roots("pin", roots);
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "a sensitive task ran off-place"
        );
    }
}

#[test]
fn ns_policy_may_move_sensitive_tasks_on_threads() {
    // DistWS-NS is allowed to migrate anything — tasks must still all
    // run exactly once.
    let counter = Arc::new(AtomicU64::new(0));
    let roots: Vec<TaskSpec> = (0..100)
        .map(|_| {
            let c = Arc::clone(&counter);
            TaskSpec::new(PlaceId(0), Locality::Sensitive, 0, "ns", move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWsNs::default()));
    let report = rt.run_roots("ns", roots);
    assert_eq!(counter.load(Ordering::Relaxed), 100);
    assert_eq!(report.tasks_executed, 100);
}

#[test]
fn deep_recursion_with_mixed_localities_terminates() {
    // A fan-out/fan-in tree with alternating annotations, checking the
    // quiescence detector under rapid spawn/complete races.
    fn tree(depth: u32, counter: Arc<AtomicU64>) -> TaskSpec {
        TaskSpec::new(
            PlaceId(0),
            if depth.is_multiple_of(2) {
                Locality::Flexible
            } else {
                Locality::Sensitive
            },
            0,
            "tree",
            move |s: &mut dyn TaskScope| {
                counter.fetch_add(1, Ordering::Relaxed);
                if depth > 0 {
                    for _ in 0..3 {
                        let mut t = tree(depth - 1, Arc::clone(&counter));
                        t.home = s.here();
                        s.spawn(t);
                    }
                }
            },
        )
    }
    let counter = Arc::new(AtomicU64::new(0));
    let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
    let report = rt.run_roots("tree", vec![tree(6, Arc::clone(&counter))]);
    let expect = (3u64.pow(7) - 1) / 2; // 1 + 3 + … + 3^6
    assert_eq!(counter.load(Ordering::Relaxed), expect);
    assert_eq!(report.tasks_executed, expect);
}
