//! Worker-side pieces shared between the in-process threaded runtime
//! and the multi-process cluster runtime (`distws-cluster`): the
//! per-worker stats bundle and the idle/park gate.
//!
//! Both runtimes execute the same Algorithm 1 acquire loop; keeping
//! the dormancy state machine and the histogram set here guarantees a
//! cluster worker's report (steal round-trip percentiles, dormancy)
//! means the same thing as a threaded worker's.

use distws_trace::Histogram;
use std::time::{Duration, Instant};

/// What a worker hands back when it exits: its busy time plus the
/// distribution observations merged into `RunReport.percentiles`.
/// Wall-clock analogues of the simulator's histograms — useful for
/// spotting contention, but (unlike the simulator's) not
/// deterministic across runs.
#[derive(Default)]
pub struct WorkerStats {
    /// Total wall-clock time spent inside task bodies.
    pub busy_ns: u64,
    /// Task body durations.
    pub granularity: Histogram,
    /// Co-worker (private-deque) steal latencies.
    pub steal_local_private: Histogram,
    /// Place-shared-queue steal latencies.
    pub steal_local_shared: Histogram,
    /// Remote steal round-trip latencies.
    pub steal_remote: Histogram,
    /// Park durations (dormant → wakeup).
    pub dormancy: Histogram,
}

impl WorkerStats {
    /// Fold another worker's observations into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.busy_ns += other.busy_ns;
        self.granularity.merge(&other.granularity);
        self.steal_local_private.merge(&other.steal_local_private);
        self.steal_local_shared.merge(&other.steal_local_shared);
        self.steal_remote.merge(&other.steal_remote);
        self.dormancy.merge(&other.dormancy);
    }
}

/// What an idle worker should do next, per [`IdleGate::note_idle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleAction {
    /// Still in the spin phase: yield and retry immediately.
    Yield,
    /// Past the spin budget: nap. `newly_dormant` is true exactly once
    /// per dormancy episode — the caller emits the `Dormant` trace
    /// event before napping.
    Park {
        /// First park of this episode.
        newly_dormant: bool,
    },
}

/// The idle/park state machine shared by both runtimes: spin-yield a
/// bounded number of failed acquires, then park in short naps until
/// work appears, measuring the dormancy span.
#[derive(Debug)]
pub struct IdleGate {
    spins: u32,
    spin_limit: u32,
    nap: Duration,
    parked_at: Option<Instant>,
}

impl Default for IdleGate {
    fn default() -> Self {
        IdleGate::new(50, Duration::from_micros(200))
    }
}

impl IdleGate {
    /// A gate that yields `spin_limit` times before parking in `nap`
    /// sleeps.
    pub fn new(spin_limit: u32, nap: Duration) -> Self {
        IdleGate {
            spins: 0,
            spin_limit,
            nap,
            parked_at: None,
        }
    }

    /// Record a fruitless acquire and decide what to do about it.
    pub fn note_idle(&mut self) -> IdleAction {
        self.spins += 1;
        if self.spins > self.spin_limit {
            let newly_dormant = self.parked_at.is_none();
            if newly_dormant {
                self.parked_at = Some(Instant::now());
            }
            IdleAction::Park { newly_dormant }
        } else {
            IdleAction::Yield
        }
    }

    /// Sleep one park interval (call after emitting `Dormant`).
    pub fn nap(&self) {
        std::thread::sleep(self.nap);
    }

    /// Record a successful acquire. Returns the dormancy span in
    /// nanoseconds if this wakeup ends a park episode — the caller
    /// records it and emits the `Wakeup` trace event.
    pub fn note_work(&mut self) -> Option<u64> {
        self.spins = 0;
        self.parked_at
            .take()
            .map(|since| since.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_then_parks_once_per_episode() {
        let mut g = IdleGate::new(3, Duration::from_micros(1));
        assert_eq!(g.note_idle(), IdleAction::Yield);
        assert_eq!(g.note_idle(), IdleAction::Yield);
        assert_eq!(g.note_idle(), IdleAction::Yield);
        assert_eq!(
            g.note_idle(),
            IdleAction::Park {
                newly_dormant: true
            }
        );
        assert_eq!(
            g.note_idle(),
            IdleAction::Park {
                newly_dormant: false
            }
        );
    }

    #[test]
    fn work_ends_the_episode_and_reports_dormancy() {
        let mut g = IdleGate::new(0, Duration::from_micros(1));
        assert!(g.note_work().is_none(), "never parked yet");
        assert!(matches!(g.note_idle(), IdleAction::Park { .. }));
        std::thread::sleep(Duration::from_millis(1));
        let span = g.note_work().expect("was parked");
        assert!(span >= 1_000_000, "dormancy {span}ns < 1ms");
        // Episode over: spin budget restored, next park is new.
        assert!(g.note_work().is_none());
        assert_eq!(
            g.note_idle(),
            IdleAction::Park {
                newly_dormant: true
            }
        );
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = WorkerStats {
            busy_ns: 10,
            ..Default::default()
        };
        a.granularity.record(5);
        let mut b = WorkerStats {
            busy_ns: 32,
            ..Default::default()
        };
        b.granularity.record(7);
        b.dormancy.record(1);
        a.merge(&b);
        assert_eq!(a.busy_ns, 42);
        assert_eq!(a.granularity.count(), 2);
        assert_eq!(a.dormancy.count(), 1);
    }
}
