//! # distws-runtime
//!
//! A real multithreaded work-stealing runtime executing the same
//! [`distws_core::Workload`]s and [`distws_sched::Policy`]s as the
//! discrete-event simulator.
//!
//! One OS thread per worker; places are groups of workers inside one
//! process. Each worker owns a lock-free Chase–Lev private deque
//! (`distws-deque`), each place owns a shared FIFO deque and an
//! *inbox* standing in for the network: cross-place spawns are
//! delivered there and picked up by Algorithm 1's `ProbeNetwork` step,
//! optionally after an injected latency that emulates the cluster
//! interconnect.
//!
//! Faithfulness notes (vs `distws-sim`):
//!
//! * steal order, deque structure and the task-mapping rule are the
//!   *same policy code*;
//! * time is real, so reports carry wall-clock makespans and real
//!   steal counts, but no cache model or virtual cost accounting;
//! * the lifeline protocol's quiesce/push machinery is simulator-only;
//!   under this runtime `Quiesce` degrades to a short sleep before the
//!   next steal round (documented degradation, asserted in tests).
//!
//! Application results are identical across both engines and all
//! policies — the suite's workloads validate themselves after every
//! run.

mod board;
pub mod shared;
mod worker;

pub use board::SharedBoard;
pub use shared::{IdleAction, IdleGate, WorkerStats};

use distws_core::rng::SplitMix64;
use distws_core::{
    ClusterConfig, FaultSummary, PlaceId, RunReport, StealCounts, TaskSpec, UtilizationSummary,
    Workload,
};
use distws_deque::SharedFifo;
use distws_metrics::{Counter, MetricsSink};
use distws_sched::{Policy, RetryPolicy};
use distws_trace::SharedSink;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use worker::{RtTask, WorkerHarness};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cluster shape (places × workers per place = OS threads).
    pub cluster: ClusterConfig,
    /// Injected one-way latency for cross-place deliveries (emulates
    /// the interconnect; `None` = deliver immediately).
    pub net_delay: Option<Duration>,
    /// Seed for the per-worker policy RNGs.
    pub seed: u64,
    /// Probability that a cross-place delivery is "lost" on its first
    /// transmission. The runtime's inbox is shared memory, so loss is
    /// emulated sender-side: each loss delays the delivery by one
    /// retransmission round ([`RetryPolicy::timeout_ns`]) and bumps
    /// the drop/retransmission counters — the task itself is never
    /// lost, keeping exactly-once execution by construction. Clamped
    /// to 0.9 so retransmission always terminates.
    pub drop_p: f64,
    /// Timeout/backoff parameters for emulated loss and for remote
    /// steal retries in the workers.
    pub retry: RetryPolicy,
    /// Retries against an empty remote victim before falling through
    /// to the next victim (0 = probe once, matching the historical
    /// behavior).
    pub steal_retry_budget: u32,
}

impl RuntimeConfig {
    /// Defaults for a cluster shape.
    pub fn new(cluster: ClusterConfig) -> Self {
        RuntimeConfig {
            cluster,
            net_delay: None,
            seed: 0x5EED,
            drop_p: 0.0,
            retry: RetryPolicy::default(),
            steal_retry_budget: 0,
        }
    }
}

/// Shared run state visible to all workers.
pub(crate) struct RunShared {
    pub cfg: ClusterConfig,
    pub board: SharedBoard,
    pub shared: Vec<SharedFifo<RtTask>>,
    /// Stealer handles, registered by each worker thread at startup.
    pub stealers: Vec<std::sync::OnceLock<distws_deque::Stealer<RtTask>>>,
    /// Per-place network inbox: (ready-at, task).
    pub inbox: Vec<Mutex<VecDeque<(Instant, RtTask)>>>,
    pub net_delay: Option<Duration>,
    pub spawned: AtomicU64,
    pub completed: AtomicU64,
    pub done: AtomicBool,
    // steal counters
    pub steals_private: AtomicU64,
    pub steals_shared: AtomicU64,
    pub steals_remote: AtomicU64,
    pub steals_failed: AtomicU64,
    pub messages: AtomicU64,
    pub total_est_ns: AtomicU64,
    // fault emulation
    /// First-transmission loss probability for cross-place deliveries.
    pub drop_p: f64,
    pub retry: RetryPolicy,
    /// Empty-victim retries per remote probe before moving on.
    pub steal_retry_budget: u32,
    /// Seeded stream deciding which deliveries are "lost". A mutex is
    /// fine: it is touched only on cross-place sends when `drop_p > 0`.
    pub drop_rng: Mutex<SplitMix64>,
    pub msgs_dropped: AtomicU64,
    pub retransmissions: AtomicU64,
    pub steal_timeouts: AtomicU64,
    pub steal_retries: AtomicU64,
    /// Trace sink shared by all workers (null unless
    /// [`Runtime::run_roots_traced`] was used).
    pub trace: SharedSink,
    /// Run start — the zero point of the wall-clock trace timeline.
    pub epoch: Instant,
}

impl RunShared {
    /// Register this worker's stealer handle (called once per thread).
    pub fn register_stealer(
        &self,
        w: distws_core::GlobalWorkerId,
        s: distws_deque::Stealer<RtTask>,
    ) {
        self.stealers[w.index()]
            .set(s)
            .ok()
            .expect("stealer registered twice");
    }

    /// Block until every worker has registered (startup barrier).
    pub fn wait_registry(&self) {
        while self.stealers.iter().any(|s| s.get().is_none()) {
            std::thread::yield_now();
        }
    }

    /// The stealer handle of a worker.
    pub fn stealer(&self, w: distws_core::GlobalWorkerId) -> &distws_deque::Stealer<RtTask> {
        self.stealers[w.index()].get().expect("registry incomplete")
    }

    /// Route a freshly spawned task toward its home place. `from` is
    /// the spawning place (or `None` for roots).
    pub fn route(&self, task: RtTask, from: Option<PlaceId>) {
        self.spawned.fetch_add(1, Ordering::SeqCst);
        self.total_est_ns
            .fetch_add(task.spec_est, Ordering::Relaxed);
        let home = task.home;
        let cross_place = from.map(|f| f != home).unwrap_or(true);
        if cross_place {
            // `async at (p)`: a network delivery.
            self.messages.fetch_add(1, Ordering::Relaxed);
            let mut ready = match self.net_delay {
                Some(d) => Instant::now() + d,
                None => Instant::now(),
            };
            if self.drop_p > 0.0 {
                // Emulated loss: the sender keeps retransmitting until
                // a transmission "arrives", so the delivery is delayed
                // by one timeout per loss but never actually lost.
                let p = self.drop_p.min(0.9);
                let mut rng = self.drop_rng.lock().unwrap();
                while rng.next_f64() < p {
                    self.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                    self.retransmissions.fetch_add(1, Ordering::Relaxed);
                    ready += Duration::from_nanos(self.retry.timeout_ns.max(1));
                }
            }
            self.inbox[home.index()]
                .lock()
                .unwrap()
                .push_back((ready, task));
        } else {
            // Local spawn: the worker maps it directly (help-first);
            // handled by the caller — reaching here means the caller
            // chose inbox delivery anyway.
            self.inbox[home.index()]
                .lock()
                .unwrap()
                .push_back((Instant::now(), task));
        }
    }
}

/// The threaded runtime.
pub struct Runtime {
    cfg: RuntimeConfig,
    policy: Box<dyn Policy>,
}

impl Runtime {
    /// A runtime with default configuration for a cluster shape.
    pub fn new(cluster: ClusterConfig, policy: Box<dyn Policy>) -> Self {
        Runtime {
            cfg: RuntimeConfig::new(cluster),
            policy,
        }
    }

    /// A runtime with an explicit configuration.
    pub fn with_config(cfg: RuntimeConfig, policy: Box<dyn Policy>) -> Self {
        Runtime { cfg, policy }
    }

    /// Run a workload to completion on real threads and validate it.
    pub fn run_app(&mut self, app: &dyn Workload) -> RunReport {
        let roots = app.roots(&self.cfg.cluster);
        let report = self.run_roots(&app.name(), roots);
        if let Err(e) = app.validate() {
            panic!(
                "workload '{}' failed validation under {}: {e}",
                app.name(),
                report.scheduler
            );
        }
        report
    }

    /// Run explicit root tasks to completion.
    pub fn run_roots(&mut self, name: &str, roots: Vec<TaskSpec>) -> RunReport {
        self.run_roots_traced(name, roots, SharedSink::null())
    }

    /// Run a workload with engine self-metrics folded into `metrics`
    /// after completion. The threaded runtime's counters come from its
    /// per-run atomics, so — unlike the simulator's — they are only as
    /// deterministic as the thread schedule that produced them.
    pub fn run_app_metered(
        &mut self,
        app: &dyn Workload,
        metrics: &mut dyn MetricsSink,
    ) -> RunReport {
        let roots = app.roots(&self.cfg.cluster);
        let report = self.run_roots_metered(&app.name(), roots, metrics);
        if let Err(e) = app.validate() {
            panic!(
                "workload '{}' failed validation under {}: {e}",
                app.name(),
                report.scheduler
            );
        }
        report
    }

    /// [`Self::run_roots`] + post-run metrics fold (see
    /// [`Self::run_app_metered`]).
    pub fn run_roots_metered(
        &mut self,
        name: &str,
        roots: Vec<TaskSpec>,
        metrics: &mut dyn MetricsSink,
    ) -> RunReport {
        let report = self.run_roots(name, roots);
        if metrics.enabled() {
            metrics.add(Counter::TasksAllocated, report.tasks_spawned);
            metrics.add(Counter::steal_successes(0), report.steals.local_private);
            metrics.add(Counter::steal_successes(1), report.steals.local_shared);
            metrics.add(Counter::steal_successes(2), report.steals.remote);
            metrics.add(Counter::MsgsSent, report.messages.total());
            metrics.add(Counter::MsgsDropped, report.faults.msgs_dropped);
            metrics.add(
                Counter::MsgsRetried,
                report.faults.retransmissions + report.faults.steal_retries,
            );
        }
        report
    }

    /// Like [`Self::run_roots`], but streams [`distws_trace`] events
    /// into `sink`. Event timestamps are wall-clock nanoseconds since
    /// run start; unlike the simulator's traces they are **not**
    /// deterministic across runs.
    pub fn run_roots_traced(
        &mut self,
        name: &str,
        roots: Vec<TaskSpec>,
        sink: SharedSink,
    ) -> RunReport {
        let cluster = self.cfg.cluster.clone();
        let np = cluster.places as usize;
        let shared = Arc::new(RunShared {
            cfg: cluster.clone(),
            board: SharedBoard::new(cluster.clone()),
            shared: (0..np).map(|_| SharedFifo::new()).collect(),
            stealers: (0..cluster.total_workers() as usize)
                .map(|_| std::sync::OnceLock::new())
                .collect(),
            inbox: (0..np).map(|_| Mutex::new(VecDeque::new())).collect(),
            net_delay: self.cfg.net_delay,
            spawned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            done: AtomicBool::new(false),
            steals_private: AtomicU64::new(0),
            steals_shared: AtomicU64::new(0),
            steals_remote: AtomicU64::new(0),
            steals_failed: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            total_est_ns: AtomicU64::new(0),
            drop_p: self.cfg.drop_p,
            retry: self.cfg.retry,
            steal_retry_budget: self.cfg.steal_retry_budget,
            drop_rng: Mutex::new(SplitMix64::new(self.cfg.seed ^ 0xFA17)),
            msgs_dropped: AtomicU64::new(0),
            retransmissions: AtomicU64::new(0),
            steal_timeouts: AtomicU64::new(0),
            steal_retries: AtomicU64::new(0),
            trace: sink,
            epoch: Instant::now(),
        });

        let start = Instant::now();
        for spec in roots {
            shared.route(RtTask::from_spec(spec), None);
        }

        let mut handles = Vec::new();
        for w in cluster.worker_ids() {
            let harness = WorkerHarness::new(
                w,
                Arc::clone(&shared),
                self.policy.clone_box(),
                self.cfg.seed ^ (0x9E37 + w.0 as u64),
            );
            handles.push(std::thread::spawn(move || harness.run()));
        }

        // Quiescence detection: children are counted as spawned while
        // their parent is still uncompleted, so spawned == completed
        // can only be observed when no task is running or pending.
        loop {
            std::thread::sleep(Duration::from_micros(500));
            let s = shared.spawned.load(Ordering::SeqCst);
            let c = shared.completed.load(Ordering::SeqCst);
            if s == c {
                shared.done.store(true, Ordering::SeqCst);
                break;
            }
        }
        let mut busy = vec![0u64; cluster.total_workers() as usize];
        let mut merged = WorkerStats::default();
        for (i, h) in handles.into_iter().enumerate() {
            let stats = h.join().expect("worker panicked");
            busy[i] = stats.busy_ns;
            merged.merge(&stats);
        }
        let makespan = start.elapsed().as_nanos() as u64;
        shared.trace.with(|s| s.flush());

        let wpp = cluster.workers_per_place as usize;
        let per_place = (0..np)
            .map(|p| {
                let b: u64 = busy[p * wpp..(p + 1) * wpp].iter().sum();
                (b as f64 / (makespan as f64 * wpp as f64)).min(1.0)
            })
            .collect();

        RunReport {
            scheduler: self.policy.name().to_string(),
            app: name.to_string(),
            config: cluster,
            makespan_ns: makespan,
            total_work_ns: shared.total_est_ns.load(Ordering::Relaxed),
            tasks_spawned: shared.spawned.load(Ordering::SeqCst),
            tasks_executed: shared.completed.load(Ordering::SeqCst),
            steals: StealCounts {
                local_private: shared.steals_private.load(Ordering::Relaxed),
                local_shared: shared.steals_shared.load(Ordering::Relaxed),
                remote: shared.steals_remote.load(Ordering::Relaxed),
                failed_attempts: shared.steals_failed.load(Ordering::Relaxed),
            },
            messages: distws_core::MessageCounts {
                task_migrations: shared.messages.load(Ordering::Relaxed),
                ..Default::default()
            },
            cache: Default::default(),
            utilization: UtilizationSummary { per_place },
            remote_refs: 0,
            faults: FaultSummary {
                msgs_dropped: shared.msgs_dropped.load(Ordering::Relaxed),
                retransmissions: shared.retransmissions.load(Ordering::Relaxed),
                steal_timeouts: shared.steal_timeouts.load(Ordering::Relaxed),
                steal_retries: shared.steal_retries.load(Ordering::Relaxed),
                ..Default::default()
            },
            percentiles: distws_core::RunPercentiles {
                steal_local_private_ns: merged.steal_local_private.summary(),
                steal_local_shared_ns: merged.steal_local_shared.summary(),
                steal_remote_ns: merged.steal_remote.summary(),
                task_granularity_ns: merged.granularity.summary(),
                dormancy_ns: merged.dormancy.summary(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distws_core::Locality;
    use distws_sched::{DistWs, X10Ws};
    use std::sync::atomic::AtomicU64 as A64;

    #[test]
    fn runs_flat_tasks_on_real_threads() {
        let counter = Arc::new(A64::new(0));
        let roots: Vec<TaskSpec> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                TaskSpec::new(PlaceId(0), Locality::Flexible, 1_000, "t", move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
        let report = rt.run_roots("flat", roots);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(report.tasks_spawned, 100);
        assert_eq!(report.tasks_executed, 100);
    }

    #[test]
    fn nested_spawns_complete() {
        let counter = Arc::new(A64::new(0));
        let c0 = Arc::clone(&counter);
        let root = TaskSpec::new(PlaceId(0), Locality::Flexible, 0, "root", move |s| {
            for _ in 0..8 {
                let c1 = Arc::clone(&c0);
                s.spawn(TaskSpec::new(
                    s.here(),
                    Locality::Flexible,
                    0,
                    "mid",
                    move |s2| {
                        for _ in 0..8 {
                            let c2 = Arc::clone(&c1);
                            s2.spawn(TaskSpec::new(
                                s2.here(),
                                Locality::Flexible,
                                0,
                                "leaf",
                                move |_| {
                                    c2.fetch_add(1, Ordering::Relaxed);
                                },
                            ));
                        }
                    },
                ));
            }
        });
        let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
        let report = rt.run_roots("nested", vec![root]);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(report.tasks_executed, 1 + 8 + 64);
    }

    #[test]
    fn cross_place_spawn_arrives() {
        let counter = Arc::new(A64::new(0));
        let c0 = Arc::clone(&counter);
        let root = TaskSpec::new(PlaceId(0), Locality::Sensitive, 0, "root", move |s| {
            let c = Arc::clone(&c0);
            s.spawn(TaskSpec::new(
                PlaceId(1),
                Locality::Sensitive,
                0,
                "remote",
                move |s2| {
                    assert_eq!(
                        s2.here(),
                        PlaceId(1),
                        "sensitive task must run at its place"
                    );
                    c.fetch_add(1, Ordering::Relaxed);
                },
            ));
        });
        let mut rt = Runtime::new(ClusterConfig::new(2, 1), Box::new(X10Ws));
        rt.run_roots("xspawn", vec![root]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn finish_latch_releases_continuation_on_threads() {
        use distws_core::FinishLatch;
        let flag = Arc::new(A64::new(0));
        let f = Arc::clone(&flag);
        let cont = TaskSpec::new(PlaceId(0), Locality::Sensitive, 0, "cont", move |_| {
            f.fetch_add(1_000, Ordering::Relaxed);
        });
        let latch = FinishLatch::new(10, cont);
        let roots: Vec<TaskSpec> = (0..10)
            .map(|_| {
                let f = Arc::clone(&flag);
                TaskSpec::new(PlaceId(0), Locality::Flexible, 0, "child", move |_| {
                    f.fetch_add(1, Ordering::Relaxed);
                })
                .with_latch(Arc::clone(&latch))
            })
            .collect();
        let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
        let report = rt.run_roots("latch", roots);
        assert_eq!(flag.load(Ordering::Relaxed), 1_010);
        assert_eq!(report.tasks_executed, 11);
    }

    #[test]
    fn lossy_delivery_never_loses_tasks() {
        // 40 cross-place spawns under 40% emulated loss: every task
        // must still execute exactly once (loss only delays delivery),
        // and the report must account for the drops.
        let counter = Arc::new(A64::new(0));
        let c0 = Arc::clone(&counter);
        let root = TaskSpec::new(PlaceId(0), Locality::Sensitive, 0, "root", move |s| {
            for i in 0..40u32 {
                let c = Arc::clone(&c0);
                s.spawn(TaskSpec::new(
                    PlaceId(1 + i % 3),
                    Locality::Sensitive,
                    0,
                    "remote",
                    move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    },
                ));
            }
        });
        let mut cfg = RuntimeConfig::new(ClusterConfig::new(4, 1));
        cfg.drop_p = 0.4;
        cfg.retry.timeout_ns = 50_000;
        let mut rt = Runtime::with_config(cfg, Box::new(X10Ws));
        let report = rt.run_roots("lossy", vec![root]);
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        assert_eq!(report.tasks_spawned, report.tasks_executed);
        assert!(
            report.faults.msgs_dropped > 0,
            "40% loss over 40 deliveries must drop something"
        );
        assert_eq!(report.faults.msgs_dropped, report.faults.retransmissions);
    }

    #[test]
    fn steal_retry_budget_is_exercised_and_bounded() {
        // Root keeps one worker busy while the others probe remotely;
        // with a retry budget the probes against empty victims must
        // back off and recount, and the run must still terminate.
        let counter = Arc::new(A64::new(0));
        let roots: Vec<TaskSpec> = (0..20)
            .map(|_| {
                let c = Arc::clone(&counter);
                TaskSpec::new(PlaceId(0), Locality::Flexible, 10_000, "t", move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(50));
                })
            })
            .collect();
        let mut cfg = RuntimeConfig::new(ClusterConfig::new(2, 2));
        cfg.steal_retry_budget = 2;
        cfg.retry.backoff_base_ns = 1_000;
        cfg.retry.backoff_max_ns = 4_000;
        let mut rt = Runtime::with_config(cfg, Box::new(DistWs::default()));
        let report = rt.run_roots("retry", roots);
        assert_eq!(counter.load(Ordering::Relaxed), 20);
        assert_eq!(report.faults.steal_timeouts, report.faults.steal_retries);
    }

    #[test]
    fn net_delay_is_tolerated() {
        let counter = Arc::new(A64::new(0));
        let c0 = Arc::clone(&counter);
        let root = TaskSpec::new(PlaceId(0), Locality::Sensitive, 0, "root", move |s| {
            for p in 0..2u32 {
                let c = Arc::clone(&c0);
                s.spawn(TaskSpec::new(
                    PlaceId(p),
                    Locality::Sensitive,
                    0,
                    "child",
                    move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    },
                ));
            }
        });
        let mut cfg = RuntimeConfig::new(ClusterConfig::new(2, 1));
        cfg.net_delay = Some(Duration::from_micros(200));
        let mut rt = Runtime::with_config(cfg, Box::new(X10Ws));
        rt.run_roots("delay", vec![root]);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }
}
