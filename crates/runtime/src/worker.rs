//! Worker threads: each runs Algorithm 1's acquire loop against real
//! lock-free deques.

use crate::shared::{IdleAction, IdleGate, WorkerStats};
use crate::RunShared;
use distws_core::rng::SplitMix64;
use distws_core::{
    FinishLatch, GlobalWorkerId, Locality, PlaceId, TaskBody, TaskId, TaskScope, TaskSpec,
};
use distws_deque::chase_lev::{deque, Worker};
use distws_sched::{DequeChoice, Policy, StealStep, TaskMeta};
use distws_trace::{SharedSink, StealTier, TraceEvent, TraceEventKind, TraceSink};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A task inside the threaded runtime.
pub(crate) struct RtTask {
    pub home: PlaceId,
    pub locality: Locality,
    pub spec_est: u64,
    #[allow(dead_code)]
    pub label: &'static str,
    pub latch: Option<Arc<FinishLatch>>,
    pub body: TaskBody,
}

impl RtTask {
    /// Convert a [`TaskSpec`] (footprints carry no runtime meaning
    /// here — there is no cost accounting on real threads).
    pub fn from_spec(spec: TaskSpec) -> Self {
        RtTask {
            home: spec.home,
            locality: spec.locality,
            spec_est: spec.est_cost_ns,
            label: spec.label,
            latch: spec.latch,
            body: spec.body,
        }
    }
}

/// One worker thread's state.
pub(crate) struct WorkerHarness {
    id: GlobalWorkerId,
    place: PlaceId,
    shared: Arc<RunShared>,
    policy: Box<dyn Policy>,
    rng: SplitMix64,
    trace: SharedSink,
}

impl WorkerHarness {
    pub fn new(
        id: GlobalWorkerId,
        shared: Arc<RunShared>,
        policy: Box<dyn Policy>,
        seed: u64,
    ) -> Self {
        let place = shared.cfg.place_of(id);
        let trace = shared.trace.clone();
        WorkerHarness {
            id,
            place,
            shared,
            policy,
            rng: SplitMix64::new(seed),
            trace,
        }
    }

    /// Nanoseconds since the run started (the trace clock).
    fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    fn emit(&mut self, kind: TraceEventKind) {
        if self.trace.enabled() {
            let ev = TraceEvent {
                t_ns: self.now_ns(),
                worker: self.id,
                place: self.place,
                kind,
            };
            self.trace.with(|s| s.record(ev));
        }
    }

    /// Thread entry point. Returns busy time + histogram observations.
    pub fn run(mut self) -> WorkerStats {
        // Deques are created lazily per thread and registered through
        // the shared registry; to keep this simple and lock-free at
        // steady state, the registry is built with a barrier below.
        let (worker, stealer) = deque::<RtTask>();
        self.shared.register_stealer(self.id, stealer);
        // Wait until every worker registered (barrier).
        self.shared.wait_registry();

        let mut stats = WorkerStats::default();
        let mut gate = IdleGate::default();
        loop {
            if self.shared.done.load(Ordering::SeqCst) {
                break;
            }
            let got = self.acquire(&worker, &mut stats);
            self.policy.note_result(self.id, got.is_some());
            match got {
                Some(task) => {
                    if let Some(span) = gate.note_work() {
                        stats.dormancy.record(span);
                        self.emit(TraceEventKind::Wakeup);
                    }
                    let dur = self.execute(&worker, task);
                    stats.granularity.record(dur);
                    stats.busy_ns += dur;
                }
                None => {
                    self.shared.steals_failed.fetch_add(1, Ordering::Relaxed);
                    match gate.note_idle() {
                        IdleAction::Yield => std::thread::yield_now(),
                        IdleAction::Park { newly_dormant } => {
                            if newly_dormant {
                                self.emit(TraceEventKind::Dormant);
                            }
                            gate.nap();
                        }
                    }
                }
            }
        }
        stats
    }

    /// Algorithm 1 lines 9–29 against the real deques.
    fn acquire(&mut self, worker: &Worker<RtTask>, stats: &mut WorkerStats) -> Option<RtTask> {
        let steps = self
            .policy
            .steal_sequence(self.id, &self.shared.board, &mut self.rng);
        let wpp = self.shared.cfg.workers_per_place;
        for step in steps {
            match step {
                StealStep::PollPrivate => {
                    if let Some(t) = worker.pop() {
                        self.shared.board.set_private_len(self.id, worker.len());
                        return Some(t);
                    }
                }
                StealStep::ProbeNetwork => {
                    // Line 11 / line 19: emitted whether or not anything
                    // arrived, so `repro conform` can justify every
                    // remote attempt in this worker's timeline.
                    self.emit(TraceEventKind::NetProbe);
                    if let Some(t) = self.probe_inbox(worker) {
                        return Some(t);
                    }
                }
                StealStep::StealCoWorker => {
                    self.emit(TraceEventKind::StealAttempt {
                        tier: StealTier::LocalPrivate,
                    });
                    let started = Instant::now();
                    let local = self.id.local(wpp).0;
                    for off in 1..wpp {
                        let v = self
                            .shared
                            .cfg
                            .global(self.place, distws_core::WorkerId((local + off) % wpp));
                        if let Some(t) = self.shared.stealer(v).steal_with_retries(4) {
                            self.shared.steals_private.fetch_add(1, Ordering::Relaxed);
                            let latency = started.elapsed().as_nanos() as u64;
                            stats.steal_local_private.record(latency);
                            self.emit(TraceEventKind::StealSuccess {
                                tier: StealTier::LocalPrivate,
                                task: TaskId(0),
                                victim: self.place,
                                latency_ns: latency,
                            });
                            return Some(t);
                        }
                    }
                }
                StealStep::StealLocalShared => {
                    self.emit(TraceEventKind::StealAttempt {
                        tier: StealTier::LocalShared,
                    });
                    let started = Instant::now();
                    let q = &self.shared.shared[self.place.index()];
                    if let Some(t) = q.take() {
                        self.shared.board.set_shared_len(self.place, q.len());
                        self.shared.steals_shared.fetch_add(1, Ordering::Relaxed);
                        let latency = started.elapsed().as_nanos() as u64;
                        stats.steal_local_shared.record(latency);
                        self.emit(TraceEventKind::StealSuccess {
                            tier: StealTier::LocalShared,
                            task: TaskId(0),
                            victim: self.place,
                            latency_ns: latency,
                        });
                        return Some(t);
                    }
                }
                StealStep::StealRemoteShared(victim) => {
                    self.emit(TraceEventKind::StealAttempt {
                        tier: StealTier::Remote,
                    });
                    let started = Instant::now();
                    // Clone the Arc so the deque borrow doesn't pin
                    // `self` (the retry loop below needs `&mut self`
                    // for tracing and backoff jitter).
                    let shared = Arc::clone(&self.shared);
                    let q = &shared.shared[victim.index()];
                    let budget = self.shared.steal_retry_budget;
                    let mut attempt = 0u32;
                    let chunk = loop {
                        attempt += 1;
                        if !q.is_empty() {
                            let c = q.take_chunk(self.policy.remote_chunk_for(q.len()));
                            self.shared.board.set_shared_len(victim, q.len());
                            if !c.is_empty() {
                                break c;
                            }
                        }
                        // Empty-handed probe. On real threads there is
                        // no lost reply to wait out, so a "timeout" is
                        // simply a fruitless probe; while the retry
                        // budget lasts, back off and re-probe the same
                        // victim (work may get published meanwhile).
                        if attempt > budget {
                            break Vec::new();
                        }
                        self.shared.steal_timeouts.fetch_add(1, Ordering::Relaxed);
                        self.shared.steal_retries.fetch_add(1, Ordering::Relaxed);
                        self.emit(TraceEventKind::StealTimeout { victim, attempt });
                        let backoff = self.shared.retry.backoff_ns(attempt, &mut self.rng);
                        std::thread::sleep(Duration::from_nanos(backoff));
                    };
                    if chunk.is_empty() {
                        continue;
                    }
                    // A distributed steal is a message exchange.
                    self.shared.messages.fetch_add(2, Ordering::Relaxed);
                    self.shared
                        .steals_remote
                        .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    if let Some(d) = self.shared.net_delay {
                        std::thread::sleep(d);
                    }
                    let mut iter = chunk.into_iter();
                    let first = iter.next();
                    for t in iter {
                        assert!(
                            self.policy.may_migrate(t.locality),
                            "{} migrated a non-migratable task",
                            self.policy.name()
                        );
                        worker.push(t);
                    }
                    self.shared.board.set_private_len(self.id, worker.len());
                    if let Some(t) = &first {
                        assert!(self.policy.may_migrate(t.locality));
                    }
                    let latency = started.elapsed().as_nanos() as u64;
                    stats.steal_remote.record(latency);
                    self.emit(TraceEventKind::StealSuccess {
                        tier: StealTier::Remote,
                        task: TaskId(0),
                        victim,
                        latency_ns: latency,
                    });
                    return first;
                }
                StealStep::Quiesce => {
                    // Lifeline push machinery is simulator-only; on
                    // real threads quiescing degrades to a nap before
                    // the next round.
                    std::thread::sleep(Duration::from_micros(100));
                    return None;
                }
            }
        }
        None
    }

    /// Drain one ready inbox delivery and map it (Algorithm 1 lines
    /// 1–8). Returns a task if the mapping handed it straight to us.
    fn probe_inbox(&mut self, worker: &Worker<RtTask>) -> Option<RtTask> {
        let task = {
            let mut inbox = self.shared.inbox[self.place.index()].lock().unwrap();
            match inbox.front() {
                Some((ready, _)) if *ready <= Instant::now() => inbox.pop_front().map(|(_, t)| t),
                _ => None,
            }
        }?;
        let meta = TaskMeta {
            home: self.place,
            locality: task.locality,
            spawned_at: self.place,
            est_cost_ns: task.spec_est,
            footprint_bytes: 0,
        };
        match self
            .policy
            .map_task(&meta, &self.shared.board, &mut self.rng)
        {
            DequeChoice::Private => Some(task),
            DequeChoice::Shared => {
                let q = &self.shared.shared[self.place.index()];
                q.push(task);
                self.shared.board.set_shared_len(self.place, q.len());
                // We are idle and just published work: take it back via
                // the normal shared-deque path on the next step; the
                // publish still matters because remote thieves can now
                // see it.
                let _ = worker;
                None
            }
        }
    }

    /// Execute one task body; returns its wall-clock duration in ns.
    fn execute(&mut self, worker: &Worker<RtTask>, task: RtTask) -> u64 {
        self.shared.board.worker_busy(self.place);
        self.emit(TraceEventKind::TaskStart { task: TaskId(0) });
        let started = Instant::now();
        {
            let here = self.place;
            let id = self.id;
            let harness_ptr: *mut WorkerHarness = self;
            let mut scope = RtScope {
                here,
                home: task.home,
                worker: id,
                deque: worker,
                harness: harness_ptr,
            };
            (task.body)(&mut scope);
        }
        let elapsed = started.elapsed().as_nanos() as u64;
        self.emit(TraceEventKind::TaskEnd { task: TaskId(0) });
        self.shared.board.set_private_len(self.id, worker.len());
        self.shared.board.worker_idle(self.place);
        // Completion: release the latch continuation (counted as
        // spawned *before* this completion is counted, so quiescence
        // detection can never fire early).
        if let Some(latch) = &task.latch {
            if let Some(cont) = latch.complete_one() {
                self.route_spawn(worker, cont);
            }
        }
        self.shared.completed.fetch_add(1, Ordering::SeqCst);
        elapsed
    }

    /// Route a task spawned at this place (locally mapped when homed
    /// here, network-delivered otherwise).
    fn route_spawn(&mut self, worker: &Worker<RtTask>, spec: TaskSpec) {
        let task = RtTask::from_spec(spec);
        if task.home == self.place {
            self.shared.spawned.fetch_add(1, Ordering::SeqCst);
            self.shared
                .total_est_ns
                .fetch_add(task.spec_est, Ordering::Relaxed);
            let meta = TaskMeta {
                home: self.place,
                locality: task.locality,
                spawned_at: self.place,
                est_cost_ns: task.spec_est,
                footprint_bytes: 0,
            };
            match self
                .policy
                .map_task(&meta, &self.shared.board, &mut self.rng)
            {
                DequeChoice::Private => {
                    worker.push(task);
                    self.shared.board.set_private_len(self.id, worker.len());
                }
                DequeChoice::Shared => {
                    let q = &self.shared.shared[self.place.index()];
                    q.push(task);
                    self.shared.board.set_shared_len(self.place, q.len());
                }
            }
        } else {
            self.shared.route(task, Some(self.place));
        }
    }
}

/// The scope handed to running task bodies.
struct RtScope<'a> {
    here: PlaceId,
    home: PlaceId,
    worker: GlobalWorkerId,
    deque: &'a Worker<RtTask>,
    harness: *mut WorkerHarness,
}

impl<'a> RtScope<'a> {
    fn harness(&mut self) -> &mut WorkerHarness {
        // SAFETY: the scope lives strictly inside `execute`, which has
        // exclusive access to the harness; the raw pointer breaks the
        // borrow cycle between the body closure and the harness.
        unsafe { &mut *self.harness }
    }
}

impl<'a> TaskScope for RtScope<'a> {
    fn here(&self) -> PlaceId {
        self.here
    }

    fn home(&self) -> PlaceId {
        self.home
    }

    fn worker(&self) -> GlobalWorkerId {
        self.worker
    }

    fn task_id(&self) -> TaskId {
        TaskId(0) // task ids are a simulator concept
    }

    fn spawn(&mut self, spec: TaskSpec) {
        let deque = self.deque;
        self.harness().route_spawn(deque, spec);
    }

    fn charge(&mut self, _ns: u64) {
        // Real time is real: virtual charges are a simulator concept.
    }

    fn access(&mut self, _access: distws_core::Access) {
        // No cache/traffic model on real threads.
    }
}
