//! Atomic cluster-status board: the threaded runtime's
//! [`distws_sched::ClusterView`] implementation (the paper's per-place
//! status object, §VI.B — read without locks by every worker).

use distws_core::{ClusterConfig, GlobalWorkerId, PlaceId};
use distws_sched::ClusterView;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Lock-free per-place busy counts and deque-length snapshots.
pub struct SharedBoard {
    cfg: ClusterConfig,
    busy: Vec<AtomicU32>,
    shared_len: Vec<AtomicUsize>,
    private_len: Vec<AtomicUsize>,
}

impl SharedBoard {
    /// A board for a cluster shape, all idle.
    pub fn new(cfg: ClusterConfig) -> Self {
        let np = cfg.places as usize;
        let nw = cfg.total_workers() as usize;
        SharedBoard {
            cfg,
            busy: (0..np).map(|_| AtomicU32::new(0)).collect(),
            shared_len: (0..np).map(|_| AtomicUsize::new(0)).collect(),
            private_len: (0..nw).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// A worker at `p` started executing a task.
    pub fn worker_busy(&self, p: PlaceId) {
        self.busy[p.index()].fetch_add(1, Ordering::AcqRel);
    }

    /// A worker at `p` stopped executing.
    pub fn worker_idle(&self, p: PlaceId) {
        self.busy[p.index()].fetch_sub(1, Ordering::AcqRel);
    }

    /// Update the cached shared-deque length of a place.
    pub fn set_shared_len(&self, p: PlaceId, len: usize) {
        self.shared_len[p.index()].store(len, Ordering::Release);
    }

    /// Update the cached private-deque length of a worker.
    pub fn set_private_len(&self, w: GlobalWorkerId, len: usize) {
        self.private_len[w.index()].store(len, Ordering::Release);
    }
}

impl ClusterView for SharedBoard {
    fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    fn busy_workers(&self, p: PlaceId) -> u32 {
        self.busy[p.index()].load(Ordering::Acquire)
    }

    fn shared_len(&self, p: PlaceId) -> usize {
        self.shared_len[p.index()].load(Ordering::Acquire)
    }

    fn private_len(&self, w: GlobalWorkerId) -> usize {
        self.private_len[w.index()].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_transitions() {
        let b = SharedBoard::new(ClusterConfig::new(2, 2));
        assert!(!b.is_place_active(PlaceId(0)));
        b.worker_busy(PlaceId(0));
        assert!(b.is_place_active(PlaceId(0)));
        assert!(b.is_under_utilized(PlaceId(0)));
        b.worker_busy(PlaceId(0));
        assert!(!b.is_under_utilized(PlaceId(0)));
        b.worker_idle(PlaceId(0));
        b.worker_idle(PlaceId(0));
        assert!(!b.is_place_active(PlaceId(0)));
    }

    #[test]
    fn deque_length_snapshots() {
        let b = SharedBoard::new(ClusterConfig::new(1, 2));
        b.set_shared_len(PlaceId(0), 5);
        assert_eq!(b.shared_len(PlaceId(0)), 5);
        b.set_private_len(GlobalWorkerId(1), 3);
        assert_eq!(b.private_len(GlobalWorkerId(1)), 3);
    }
}
